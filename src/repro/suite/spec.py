"""Declarative experiment-suite specs: one TOML file per figure/table.

A suite spec is the pattern SNIPPETS.md snippet 3 points at (the
districting repo's ``config-tableN.json`` -> Table N): one declarative
config expands deterministically into the full run grid behind a paper
deliverable, and the declared outputs regenerate from the result store
alone.  The TOML shape::

    [suite]
    name = "paper"
    description = "Figs. 1-6 and Table I, full grid"

    [matrix]
    scale = "small"          # tiny | small | paper
    horizon = 24             # optional horizon override (slots)
    packs = ["synthetic"]    # registered workload pack names
    policies = ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]
    seeds = [0, 1, 2]
    alphas = [0.5]           # Eq. 5 weight (Proposed only)
    engines = ["slot"]       # slot | event simulation drivers
    vectorized = [true]      # engine hot-path flags
    qos = [0.98]             # migration QoS levels (scenario knob)

    [outputs]
    figures = [1, 2, 3, 4, 5, 6]
    tables = [1]
    export = true            # CSV export of the comparison series

Every ``[matrix]`` axis except ``scale``/``horizon`` is a list; the
grid is their cross product (packs x seeds x alphas x engines x
vectorized x qos x policies), expanded in that nesting order so the
request sequence -- and therefore the campaign ledger's planned order
-- is deterministic for a given file.

Error reporting follows ``load_utilization_csv``'s discipline: every
:class:`SuiteSpecError` names ``file:line: [section].key`` for the
offending value, and unknown or misspelled keys are rejected rather
than ignored (a typoed axis silently shrinking a nightly sweep is the
failure mode this guards against).

The spec's identity is ``sha256`` over the raw TOML bytes -- the
*suite sha* recorded in every campaign ledger header, tying stored
artifacts back to the exact file revision that planned them.
"""

from __future__ import annotations

import hashlib
import pathlib
import tomllib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.experiments.orchestrator import (
    EngineOptions,
    RunRequest,
)
from repro.sim.config import (
    EngineCoreConfig,
    ExperimentConfig,
    paper_config,
    scaled_config,
)
from repro.sim.state import PlacementPolicy
from repro.workload.packs import TracePack, available_packs, get_pack

__all__ = [
    "COMPARISON_POLICIES",
    "KNOWN_FIGURES",
    "KNOWN_TABLES",
    "SuiteCell",
    "SuiteRun",
    "SuiteSpec",
    "SuiteSpecError",
    "load_suite",
]

#: The paper's four methods in reporting order -- what the figure
#: reports require, and the policy-name vocabulary specs may use.
COMPARISON_POLICIES = ("Proposed", "Ener-aware", "Pri-aware", "Net-aware")

#: Figures/tables a suite may declare as outputs.
KNOWN_FIGURES = (1, 2, 3, 4, 5, 6)
KNOWN_TABLES = (1,)

_SUITE_KEYS = {"name", "description"}
_MATRIX_KEYS = {
    "scale", "horizon", "packs", "policies", "seeds", "alphas",
    "engines", "vectorized", "qos",
}
_OUTPUT_KEYS = {"figures", "tables", "export"}
_SCALES = ("tiny", "small", "paper")
_ENGINES = ("slot", "event")


class SuiteSpecError(ValueError):
    """A malformed suite spec, located as ``file:line: [section].key``."""


class _KeyLocator:
    """Maps ``(section, key)`` to a 1-based line number in the raw TOML.

    tomllib reports line numbers for syntax errors but discards them
    for well-formed documents, so semantic diagnostics (unknown key,
    bad axis value) re-locate keys by scanning the source text:
    ``[section]`` headers open sections, and the first
    ``key = ...``/``key=...`` line inside one wins.  Good enough for
    the flat two-level schema suites use; a key the scan cannot find
    falls back to the section header's line (or line 1).
    """

    def __init__(self, text: str) -> None:
        self._keys: dict[tuple[str, str], int] = {}
        self._sections: dict[str, int] = {}
        section = ""
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("["):
                section = line.strip("[]").strip().strip('"')
                self._sections.setdefault(section, number)
                continue
            key = line.split("=", 1)[0].strip().strip('"')
            if key:
                self._keys.setdefault((section, key), number)

    def line(self, section: str, key: str | None = None) -> int:
        if key is not None and (section, key) in self._keys:
            return self._keys[(section, key)]
        return self._sections.get(section, 1)


@dataclass(frozen=True)
class _Diagnostics:
    """Shared error context: the spec path plus the key locator."""

    path: str
    locator: _KeyLocator

    def error(self, section: str, key: str | None, message: str) -> SuiteSpecError:
        where = f"[{section}]" + (f".{key}" if key else "")
        line = self.locator.line(section, key)
        return SuiteSpecError(f"{self.path}:{line}: {where}: {message}")


@dataclass(frozen=True)
class SuiteRun:
    """One expanded run: the request plus its suite-side labels.

    ``labels`` names the matrix coordinates that produced the request
    (pack, policy, seed, alpha, engine, vectorized, qos) -- ledger
    provenance, never part of the fingerprint.
    """

    request: RunRequest
    labels: dict

    @property
    def fingerprint(self) -> str:
        # Memoized locally: campaign bookkeeping reads this several
        # times per run (plan, skip check, submit, done), and even the
        # request's own memoized hash costs a method chain per call.
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = self.request.fingerprint()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


@dataclass(frozen=True)
class SuiteCell:
    """One output cell: the four-policy comparison at fixed coordinates.

    Outputs (figures/tables/export) are regenerated per cell -- one per
    (pack x engine x vectorized x qos) combination at the matrix's
    *first* seed and alpha, mirroring the paper's single-realization
    figures while the remaining seeds serve replication studies.
    """

    key: str
    config: ExperimentConfig
    runs: tuple[SuiteRun, ...]  # comparison order (COMPARISON_POLICIES)

    def fingerprints(self) -> dict[str, str]:
        """Policy name -> fingerprint for this cell's comparison."""
        return {
            run.labels["policy"]: run.fingerprint for run in self.runs
        }


def _policy_builder(name: str) -> Callable[[float], PlacementPolicy]:
    """A fresh-policy factory for ``name`` (policies carry state)."""
    builders: dict[str, Callable[[float], PlacementPolicy]] = {
        "Proposed": lambda alpha: ProposedPolicy(
            force_params=ForceParameters(alpha=alpha)
        ),
        "Ener-aware": lambda alpha: EnerAwarePolicy(),
        "Pri-aware": lambda alpha: PriAwarePolicy(),
        "Net-aware": lambda alpha: NetAwarePolicy(),
    }
    return builders[name]


@dataclass(frozen=True)
class SuiteSpec:
    """A parsed, validated suite spec plus its content identity."""

    name: str
    description: str
    path: str
    sha256: str
    scale: str
    horizon: int | None
    packs: tuple[str, ...]
    policies: tuple[str, ...]
    seeds: tuple[int, ...]
    alphas: tuple[float, ...]
    engines: tuple[str, ...]
    vectorized: tuple[bool, ...]
    qos: tuple[float, ...]
    figures: tuple[int, ...] = ()
    tables: tuple[int, ...] = ()
    export: bool = False
    raw: str = field(default="", repr=False)

    @property
    def campaign_id(self) -> str:
        """Deterministic campaign identity: suite name + content sha.

        Re-running an unchanged spec resumes the same campaign ledger;
        editing the file (new sha) starts a fresh campaign, so a
        ledger never silently mixes two grid definitions.
        """
        return f"{self.name}-{self.sha256[:10]}"

    @property
    def has_outputs(self) -> bool:
        return bool(self.figures or self.tables or self.export)

    def _config(self, seed: int, qos: float) -> ExperimentConfig:
        if self.scale == "paper":
            config = paper_config(seed=seed)
        else:
            config = scaled_config(self.scale, seed=seed)
        if self.horizon is not None:
            config = config.with_horizon(self.horizon)
        if qos != config.qos:
            import dataclasses

            config = dataclasses.replace(config, qos=qos)
        return config

    def _pack(self, name: str) -> TracePack:
        return get_pack(name)

    def expand(self) -> list[SuiteRun]:
        """The full deterministic run grid, in planning order.

        Nesting order (outermost first): pack, qos, vectorized,
        engine, seed, alpha, policy.  Fingerprints are unique by
        construction for distinct coordinates except that baseline
        policies ignore ``alpha`` -- those duplicates are planned once
        (first alpha wins), keeping the ledger one-entry-per-
        fingerprint.
        """
        runs: list[SuiteRun] = []
        seen: set[str] = set()
        for run in self._iter_runs():
            if run.fingerprint in seen:
                continue
            seen.add(run.fingerprint)
            runs.append(run)
        return runs

    def _iter_runs(self) -> Iterator[SuiteRun]:
        for pack_name in self.packs:
            pack = self._pack(pack_name)
            for qos in self.qos:
                for vectorized in self.vectorized:
                    for engine in self.engines:
                        options = EngineOptions(
                            vectorized=vectorized,
                            engine=EngineCoreConfig(kind=engine),
                        )
                        for seed in self.seeds:
                            for alpha in self.alphas:
                                for policy_name in self.policies:
                                    yield self._run(
                                        pack, pack_name, qos, vectorized,
                                        engine, options, seed, alpha,
                                        policy_name,
                                    )

    def _run(
        self, pack, pack_name, qos, vectorized, engine, options, seed,
        alpha, policy_name,
    ) -> SuiteRun:
        request = RunRequest(
            config=self._config(seed, qos),
            policy=_policy_builder(policy_name)(alpha),
            options=options,
            pack=pack,
        )
        return SuiteRun(
            request=request,
            labels={
                "pack": pack_name,
                "policy": policy_name,
                "seed": seed,
                "alpha": alpha,
                "engine": engine,
                "vectorized": vectorized,
                "qos": qos,
            },
        )

    def output_cells(self) -> list[SuiteCell]:
        """The comparison cells the declared outputs regenerate from.

        One cell per (pack x qos x vectorized x engine) combination at
        the first seed and first alpha.  Empty when the spec declares
        no outputs.
        """
        if not self.has_outputs:
            return []
        seed, alpha = self.seeds[0], self.alphas[0]
        cells = []
        for pack_name in self.packs:
            pack = self._pack(pack_name)
            for qos in self.qos:
                for vectorized in self.vectorized:
                    for engine in self.engines:
                        options = EngineOptions(
                            vectorized=vectorized,
                            engine=EngineCoreConfig(kind=engine),
                        )
                        runs = tuple(
                            self._run(
                                pack, pack_name, qos, vectorized, engine,
                                options, seed, alpha, policy_name,
                            )
                            for policy_name in COMPARISON_POLICIES
                        )
                        key = _cell_key(
                            pack_name, qos, vectorized, engine
                        )
                        cells.append(
                            SuiteCell(
                                key=key,
                                config=self._config(seed, qos),
                                runs=runs,
                            )
                        )
        return cells


def _cell_key(pack: str, qos: float, vectorized: bool, engine: str) -> str:
    """Filesystem-safe label for one output cell."""
    parts = [pack, engine]
    if not vectorized:
        parts.append("loops")
    if qos != 0.98:
        parts.append(f"qos{qos:g}".replace(".", "p"))
    return "-".join(parts)


# -- parsing / validation ------------------------------------------------


def _check_table(
    diag: _Diagnostics, document: dict, section: str, allowed: set[str],
    required: bool = False,
) -> dict:
    table = document.get(section)
    if table is None:
        if required:
            raise SuiteSpecError(
                f"{diag.path}:1: missing required [{section}] table"
            )
        return {}
    if not isinstance(table, dict):
        raise diag.error(section, None, "must be a table ([section])")
    for key in table:
        if key not in allowed:
            raise diag.error(
                section, key,
                f"unknown key {key!r}; allowed: {sorted(allowed)}",
            )
    return table


def _string(diag: _Diagnostics, table: dict, section: str, key: str,
            default: str | None = None, choices: tuple[str, ...] | None = None):
    value = table.get(key, default)
    if value is None:
        raise diag.error(section, key, "required string is missing")
    if not isinstance(value, str):
        raise diag.error(
            section, key, f"expected a string, got {value!r}"
        )
    if choices is not None and value not in choices:
        raise diag.error(
            section, key, f"must be one of {list(choices)}, got {value!r}"
        )
    return value


def _axis(
    diag: _Diagnostics,
    table: dict,
    section: str,
    key: str,
    kinds: tuple[type, ...],
    default: list,
    describe: str,
    check=None,
) -> tuple:
    """A non-empty homogeneous list axis with per-element validation."""
    value = table.get(key, default)
    if not isinstance(value, list):
        raise diag.error(
            section, key, f"expected a list of {describe}, got {value!r}"
        )
    if not value:
        raise diag.error(section, key, "axis must not be empty")
    out = []
    for item in value:
        # bool is an int subclass; keep the axes honest (seeds = [true]
        # must not parse as seeds = [1]).
        if isinstance(item, bool) and bool not in kinds:
            raise diag.error(
                section, key, f"expected {describe}, got {item!r}"
            )
        if not isinstance(item, kinds):
            raise diag.error(
                section, key, f"expected {describe}, got {item!r}"
            )
        if check is not None:
            message = check(item)
            if message:
                raise diag.error(section, key, f"{message}: {item!r}")
        out.append(item)
    if len(set(map(repr, out))) != len(out):
        raise diag.error(section, key, f"duplicate entries: {value!r}")
    return tuple(out)


def parse_suite(
    text: str, path: str | pathlib.Path = "<suite>"
) -> SuiteSpec:
    """Parse and validate suite TOML text into a :class:`SuiteSpec`.

    Raises :class:`SuiteSpecError` with ``file:line: [section].key``
    context for every semantic problem; TOML syntax errors surface
    with tomllib's own line/column report prefixed by the path.
    """
    path = str(path)
    diag = _Diagnostics(path=path, locator=_KeyLocator(text))
    try:
        document = tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise SuiteSpecError(f"{path}: invalid TOML: {error}") from None
    for section in document:
        if section not in ("suite", "matrix", "outputs"):
            raise diag.error(
                section, None,
                "unknown table; suites use [suite], [matrix], [outputs]",
            )

    suite = _check_table(diag, document, "suite", _SUITE_KEYS, required=True)
    name = _string(diag, suite, "suite", "name")
    if not name or any(ch in name for ch in "/\\ \t\n"):
        raise diag.error(
            "suite", "name",
            f"must be a non-empty label without spaces or slashes, "
            f"got {name!r}",
        )
    description = suite.get("description", "")
    if not isinstance(description, str):
        raise diag.error(
            "suite", "description",
            f"expected a string, got {description!r}",
        )

    matrix = _check_table(
        diag, document, "matrix", _MATRIX_KEYS, required=True
    )
    scale = _string(
        diag, matrix, "matrix", "scale", default="small", choices=_SCALES
    )
    horizon = matrix.get("horizon")
    if horizon is not None and (
        isinstance(horizon, bool)
        or not isinstance(horizon, int)
        or horizon < 1
    ):
        raise diag.error(
            "matrix", "horizon",
            f"expected a positive integer slot count, got {horizon!r}",
        )
    registered = set(available_packs())
    packs = _axis(
        diag, matrix, "matrix", "packs", (str,), ["synthetic"],
        "registered pack names",
        check=lambda p: (
            None if p in registered
            else f"unknown pack (available: {sorted(registered)})"
        ),
    )
    policies = _axis(
        diag, matrix, "matrix", "policies", (str,),
        list(COMPARISON_POLICIES), "policy names",
        check=lambda p: (
            None if p in COMPARISON_POLICIES
            else f"unknown policy (available: {list(COMPARISON_POLICIES)})"
        ),
    )
    seeds = _axis(
        diag, matrix, "matrix", "seeds", (int,), [0],
        "integer seeds",
        check=lambda s: None if s >= 0 else "seed must be >= 0",
    )
    alphas = _axis(
        diag, matrix, "matrix", "alphas", (int, float), [0.5],
        "alpha weights in [0, 1]",
        check=lambda a: None if 0.0 <= a <= 1.0 else "alpha out of [0, 1]",
    )
    engines = _axis(
        diag, matrix, "matrix", "engines", (str,), ["slot"],
        "engine kinds",
        check=lambda e: (
            None if e in _ENGINES else f"unknown engine (use {_ENGINES})"
        ),
    )
    vectorized = _axis(
        diag, matrix, "matrix", "vectorized", (bool,), [True],
        "booleans",
    )
    qos = _axis(
        diag, matrix, "matrix", "qos", (int, float), [0.98],
        "QoS levels in (0, 1)",
        check=lambda q: None if 0.0 < q < 1.0 else "qos out of (0, 1)",
    )

    outputs = _check_table(diag, document, "outputs", _OUTPUT_KEYS)
    figures: tuple[int, ...] = ()
    tables: tuple[int, ...] = ()
    export = False
    if outputs:
        if "figures" in outputs:
            figures = _axis(
                diag, outputs, "outputs", "figures", (int,), [],
                "figure numbers",
                check=lambda f: (
                    None if f in KNOWN_FIGURES
                    else f"unknown figure (have {list(KNOWN_FIGURES)})"
                ),
            )
        if "tables" in outputs:
            tables = _axis(
                diag, outputs, "outputs", "tables", (int,), [],
                "table numbers",
                check=lambda t: (
                    None if t in KNOWN_TABLES
                    else f"unknown table (have {list(KNOWN_TABLES)})"
                ),
            )
        export = outputs.get("export", False)
        if not isinstance(export, bool):
            raise diag.error(
                "outputs", "export",
                f"expected a boolean, got {export!r}",
            )
    if (figures or tables or export) and set(COMPARISON_POLICIES) - set(
        policies
    ):
        missing = sorted(set(COMPARISON_POLICIES) - set(policies))
        raise diag.error(
            "matrix", "policies",
            "declared outputs need the full four-policy comparison; "
            f"missing {missing}",
        )

    return SuiteSpec(
        name=name,
        description=description,
        path=path,
        sha256=hashlib.sha256(text.encode()).hexdigest(),
        scale=scale,
        horizon=horizon,
        packs=packs,
        policies=policies,
        seeds=seeds,
        alphas=alphas,
        engines=engines,
        vectorized=vectorized,
        qos=qos,
        figures=figures,
        tables=tables,
        export=export,
        raw=text,
    )


def load_suite(path: str | pathlib.Path) -> SuiteSpec:
    """Load and validate a suite spec file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise SuiteSpecError(f"cannot read suite {path}: {error}") from None
    return parse_suite(text, path)
