"""Campaign execution: drive a suite's run grid to completion, ledgered.

A *campaign* is one suite spec's expanded grid executed against one
result store, identified deterministically as
``<suite-name>-<suite-sha[:10]>`` -- re-running an unchanged spec
against the same store always addresses the same campaign (and the
same ledger), which is what makes ``repro suite resume`` safe after a
SIGKILL: the interrupted and uninterrupted timelines plan identical
fingerprints with identical store meta, so the stores converge
byte-identically.

The driver is deliberately a thin shell around the existing consumer
surface (:class:`~repro.experiments.orchestrator.Orchestrator`,
``ServiceClient`` or ``FleetClient`` -- anything with
``submit_many``/``as_done``/``lookup``): the ledger wraps execution,
it never replaces the store as the source of truth.  Resume trusts
the ledger only as a *hint* and verifies every ``done`` fingerprint
against the store before skipping it.
"""

from __future__ import annotations

import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.suite.ledger import CampaignLedger, CampaignState
from repro.suite.spec import SuiteRun, SuiteSpec

__all__ = [
    "CampaignDriver",
    "CampaignError",
    "CampaignReport",
    "campaign_status",
    "code_sha",
]


class CampaignError(RuntimeError):
    """A campaign-level refusal (wrong ledger state, failed runs)."""


#: Terminal-transition records buffered before one write+flush.
_FLUSH_BATCH = 64

#: Longest a buffered terminal transition may wait before flushing.
_FLUSH_INTERVAL_S = 0.25


def code_sha(root: str | pathlib.Path | None = None) -> str:
    """The repository HEAD sha for provenance, or ``unknown``.

    Suites run from installed checkouts, CI workspaces and bare
    containers alike, so a missing git (or a non-repo cwd) degrades to
    a sentinel rather than failing the campaign.
    """
    if root is None:
        # The checkout this code was imported from, not the cwd --
        # campaigns are routinely driven from scratch directories.
        root = pathlib.Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass
class CampaignReport:
    """What one driver invocation did, for rendering and tests."""

    campaign_id: str
    total: int
    skipped: int = 0  # ledger-done, store-verified
    warm: int = 0  # store hits not yet ledgered done
    executed: int = 0  # actually simulated this invocation
    failed: int = 0
    wall_s: float = 0.0
    outputs: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One status line: planned/skipped/warm/executed and wall time."""
        parts = [
            f"campaign {self.campaign_id}: {self.total} planned",
            f"{self.skipped} skipped",
            f"{self.warm} warm",
            f"{self.executed} executed",
        ]
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        parts.append(f"{self.wall_s:.1f}s")
        return ", ".join(parts)


def _daemon_resolver(consumer) -> Callable[[str], str]:
    """Map a fingerprint to the daemon id that (by routing) ran it.

    In-process consumers stamp one identity for every run; a
    ``FleetClient`` routes per fingerprint by rendezvous hashing, so
    the resolver mirrors that route.  Failover may reroute a
    fingerprint to a surviving member mid-campaign -- the ledger
    records the *planned* route; the artifact's own store meta stays
    authoritative for which daemon actually wrote it.
    """
    urls = getattr(consumer, "urls", None)
    if urls:  # FleetClient
        from repro.service.fleet import rendezvous_member

        member_urls = list(urls)
        return lambda fp: rendezvous_member(fp, member_urls)
    url = getattr(consumer, "url", None)
    if url is not None:  # ServiceClient
        identity = url
        try:
            identity = consumer.ping().get("daemon_id", url)
        except Exception:
            pass
        return lambda fp: identity
    meta = getattr(consumer, "meta", None) or {}
    local = meta.get("daemon", "local")
    return lambda fp: local


class CampaignDriver:
    """Execute (or resume) one suite campaign against one consumer.

    Parameters
    ----------
    spec:
        The parsed suite spec.
    consumer:
        Orchestrator, ``ServiceClient`` or ``FleetClient``.  If it
        exposes ``with_meta``, runs are stamped with the campaign id
        (in-process: into every artifact's store meta envelope;
        service paths: an ``X-Repro-Campaign`` header feeding the
        daemon's per-campaign counters).
    ledger_root:
        Directory whose ``campaigns/`` subdir holds the manifest --
        the store root for local runs, any scratch dir for ``--service``
        runs (the ledger is a client-side audit record either way).
    echo:
        Progress-line sink (``None`` silences).
    """

    def __init__(
        self,
        spec: SuiteSpec,
        consumer,
        ledger_root: str | pathlib.Path,
        echo: Callable[[str], None] | None = None,
    ) -> None:
        self.spec = spec
        self.ledger_root = pathlib.Path(ledger_root)
        self.echo = echo or (lambda line: None)
        self.code_sha = code_sha()
        with_meta = getattr(consumer, "with_meta", None)
        if with_meta is not None:
            consumer = with_meta({"campaign": spec.campaign_id})
        self.consumer = consumer
        self._daemon_for = _daemon_resolver(consumer)

    def ledger(self) -> CampaignLedger:
        """This campaign's ledger handle under the configured root."""
        return CampaignLedger.for_store(
            self.ledger_root, self.spec.campaign_id
        )

    # -- the run/resume core -----------------------------------------------

    def run(self, resume: bool = False) -> CampaignReport:
        """Execute the campaign (or what remains of it).

        A fresh ``run`` refuses to touch an existing *incomplete*
        ledger (the operator must say ``resume`` -- an explicit
        acknowledgement that a previous driver died); ``resume``
        refuses to start from nothing.  A complete campaign is
        idempotent under both verbs: nothing re-executes, outputs
        regenerate from the store.
        """
        ledger = self.ledger()
        state = ledger.replay()
        if resume and state.header is None:
            raise CampaignError(
                f"nothing to resume: no ledger for campaign "
                f"{self.spec.campaign_id!r} under {ledger.path.parent}"
            )
        if not resume and state.header is not None and not state.complete:
            raise CampaignError(
                f"campaign {self.spec.campaign_id!r} has an interrupted "
                f"ledger at {ledger.path} "
                f"({state.counts()['done']}/{len(state.planned)} done); "
                f"use 'repro suite resume' to continue it"
            )
        if state.suite_sha is not None and state.suite_sha != self.spec.sha256:
            raise CampaignError(
                f"ledger {ledger.path} was planned from suite sha "
                f"{state.suite_sha[:10]}, but {self.spec.path} now hashes "
                f"to {self.spec.sha256[:10]}; edited suites start a new "
                f"campaign (delete the stale ledger if it is abandoned)"
            )
        try:
            return self._execute(ledger, state)
        finally:
            ledger.close()

    def _execute(
        self, ledger: CampaignLedger, state: CampaignState
    ) -> CampaignReport:
        started = time.monotonic()
        runs = self.spec.expand()
        opening: list[dict] = [
            {
                "type": "campaign",
                "campaign": self.spec.campaign_id,
                "suite": self.spec.name,
                "suite_sha": self.spec.sha256,
                "suite_path": str(self.spec.path),
                "code_sha": self.code_sha,
                "total": len(runs),
                "time": time.time(),
            }
        ]
        plans = [
            {
                "fingerprint": run.fingerprint,
                "labels": run.labels,
                "pack_sha": run.request.pack.sha256,
            }
            for run in runs
            if run.fingerprint not in state.planned
        ]
        if plans:
            opening.append({"type": "plan_batch", "runs": plans})
        ledger.append_many(opening)

        report = CampaignReport(
            campaign_id=self.spec.campaign_id, total=len(runs)
        )
        pending: list[SuiteRun] = []
        for run in runs:
            record = state.status.get(run.fingerprint)
            if record is not None and record.get("status") == "done":
                # Ledger says done -- believe it only if the store
                # still holds the artifact (GC or a lost store root
                # must re-execute, not silently hole the campaign).
                if self.consumer.lookup(run.request, run.fingerprint):
                    report.skipped += 1
                    continue
            pending.append(run)
        if report.skipped:
            self.echo(
                f"{report.skipped} store-verified run(s) skipped"
            )

        if pending:
            self._drain(ledger, pending, report)
        report.wall_s = time.monotonic() - started
        if report.failed:
            raise CampaignError(
                f"{report.failed} run(s) failed; see {ledger.path}"
            )
        return report

    def _drain(
        self,
        ledger: CampaignLedger,
        pending: list[SuiteRun],
        report: CampaignReport,
    ) -> None:
        """Submit the pending tail and ledger every terminal transition.

        ``submitted`` records land before the batch is handed to the
        consumer, so a crash mid-execution leaves an honest trail (the
        run may or may not have reached the store; resume's store
        verification disambiguates).
        """
        # One submit_many call submits the whole batch at one instant,
        # so one batch record captures it -- and keeps the warm sweep's
        # bookkeeping to a single encode instead of one per run.
        ledger.append(
            {
                "type": "status_batch",
                "status": "submitted",
                "fingerprints": [run.fingerprint for run in pending],
                "time": time.time(),
            }
        )
        by_fp = {run.fingerprint: run for run in pending}
        futures = self.consumer.submit_many(
            [run.request for run in pending]
        )
        # Terminal transitions are batched adaptively: cold campaigns
        # (seconds per run) flush nearly per record, warm sweeps
        # (thousands of hits per second) amortize one envelope record
        # over up to _FLUSH_BATCH entries, with the batch-constant
        # provenance (suite/code sha) hoisted into the envelope.  A
        # crash loses at most the buffered tail, and a lost ``done``
        # merely re-submits on resume and resolves warm from the
        # store -- never a re-execution.  Failures land solo and
        # immediately: they are rare and worth the durability.
        def flush(entries: list[dict]) -> None:
            ledger.append(
                {
                    "type": "status_batch",
                    "status": "done",
                    "suite_sha": self.spec.sha256,
                    "code_sha": self.code_sha,
                    "records": entries,
                }
            )

        batch: list[dict] = []
        last_flush = time.monotonic()
        done = 0
        for future in self.consumer.as_done(futures):
            run = by_fp[future.fingerprint]
            error = future.exception()
            if error is not None:
                report.failed += 1
                ledger.append(
                    {
                        "type": "status",
                        "fingerprint": run.fingerprint,
                        "status": "failed",
                        "error": f"{type(error).__name__}: {error}",
                        "time": time.time(),
                    }
                )
                continue
            artifact = future.result()
            if artifact.source == "computed":
                report.executed += 1
            else:
                report.warm += 1
            batch.append(
                {
                    "fingerprint": run.fingerprint,
                    "source": artifact.source,
                    "elapsed_s": artifact.elapsed_s,
                    "daemon": self._daemon_for(run.fingerprint),
                    "engine": run.labels["engine"],
                    "pack_sha": run.request.pack.sha256,
                    "time": time.time(),
                }
            )
            done += 1
            if done % 25 == 0 or done == len(pending):
                self.echo(f"  {done}/{len(pending)} resolved")
            now = time.monotonic()
            if (
                len(batch) >= _FLUSH_BATCH
                or now - last_flush >= _FLUSH_INTERVAL_S
            ):
                flush(batch)
                batch = []
                last_flush = now
        if batch:
            flush(batch)


def campaign_status(
    root: str | pathlib.Path, spec: SuiteSpec | None = None
) -> list[CampaignState]:
    """Replayed state for every campaign under ``root`` (or one spec's)."""
    from repro.suite.ledger import list_campaigns

    if spec is not None:
        ledger = CampaignLedger.for_store(root, spec.campaign_id)
        return [ledger.replay()] if ledger.exists() else []
    return [ledger.replay() for ledger in list_campaigns(root)]
