"""Append-only segment store: packed records + mmap-able offset index.

Layout::

    root/STORE_FORMAT.json                  # {"format": "segment", ...}
    root/segments/<writer>.seg              # packed document records
    root/segments/<writer>.idx              # fixed-width offset index

Record format (``.seg``)
------------------------

Each record is ``<32s Q`` header + payload: the raw 32-byte
fingerprint, the payload length as a little-endian u64, then the
UTF-8 JSON document bytes.  A length of zero is a *tombstone*: the
fingerprint was deleted.  The segment is self-describing, so a lost
index can always be rebuilt by a linear scan.

Index format (``.idx``)
-----------------------

Fixed 48-byte entries (:data:`INDEX_DTYPE`): raw fingerprint, payload
offset, payload length -- directly mmap-able as a numpy structured
array, which is how large indexes are loaded.  Entries are appended
*after* their record bytes, so a crash can at worst leave a trailing
partial entry (ignored by the length check) or a record without an
entry (invisible; rewritten on the next run, reclaimed by
:meth:`SegmentBackend.compact`).

Concurrent-writer discipline
----------------------------

Every backend instance appends to its *own* ``<writer>.seg/.idx``
pair -- the writer id embeds a nanosecond timestamp, the pid and a
random suffix -- so processes sharing a root never interleave bytes
in one file and need no locks.  Readers discover new/grown index
files on any miss and on every scan.  Entries replay in (file name,
file order) order; file names sort by creation time, which makes the
replay order match wall-clock write order across writers for the
cases that matter (delete-then-recompute).  Runs are deterministic
per fingerprint, so racing writers of the *same* fingerprint store
identical documents and either winner is correct.

Compaction (:meth:`SegmentBackend.compact`) rewrites the live
documents into one fresh segment pair and removes the old files; it
requires exclusive access, enforced with an ``O_EXCL`` lock file.
"""

from __future__ import annotations

import json
import mmap
import os
import pathlib
import struct
import threading
import time
import uuid
from typing import BinaryIO, Iterator

import numpy as np

from repro.store.base import write_marker

#: One mmap-able offset-index entry: raw fingerprint, offset, length.
INDEX_DTYPE = np.dtype(
    [("fingerprint", "S32"), ("offset", "<u8"), ("length", "<u8")]
)

#: Record header preceding each payload in a segment file.
RECORD_HEADER = struct.Struct("<32sQ")

#: Index files larger than this are loaded through ``np.memmap``.
_MMAP_THRESHOLD = 1 << 20

#: Records batch-parsed per ``json.loads`` call during a scan.
_SCAN_CHUNK = 4096


def _fingerprint_bytes(fingerprint: str) -> bytes:
    """The raw 32-byte form of a SHA-256 hex fingerprint."""
    try:
        raw = bytes.fromhex(fingerprint)
    except ValueError:
        raw = b""
    if len(raw) != 32:
        raise ValueError(
            "segment stores key documents by SHA-256 hex fingerprints "
            f"(64 hex chars); got {fingerprint!r}"
        )
    return raw


class _SegmentWriter:
    """This instance's private append-only segment/index file pair."""

    def __init__(self, base: pathlib.Path) -> None:
        base.mkdir(parents=True, exist_ok=True)
        stamp = (
            f"{time.time_ns():020d}-{os.getpid():08d}-{uuid.uuid4().hex[:8]}"
        )
        self.seg_path = base / f"{stamp}.seg"
        self.idx_path = base / f"{stamp}.idx"
        self._seg = open(self.seg_path, "ab")
        self._idx = open(self.idx_path, "ab")
        self._offset = 0

    def append(self, fingerprint: str, payload: bytes) -> int:
        """Append one record; returns the payload's segment offset."""
        raw = _fingerprint_bytes(fingerprint)
        self._seg.write(RECORD_HEADER.pack(raw, len(payload)))
        if payload:
            self._seg.write(payload)
        self._seg.flush()
        offset = self._offset + RECORD_HEADER.size
        entry = np.array([(raw, offset, len(payload))], dtype=INDEX_DTYPE)
        self._idx.write(entry.tobytes())
        self._idx.flush()
        self._offset += RECORD_HEADER.size + len(payload)
        return offset

    def close(self) -> None:
        self._seg.close()
        self._idx.close()


class SegmentBackend:
    """Documents packed into append-only segments with an offset index."""

    format = "segment"

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)
        self._lock = threading.RLock()
        self._index: dict[str, tuple[pathlib.Path, int, int]] = {}
        self._consumed: dict[pathlib.Path, int] = {}
        self._writer: _SegmentWriter | None = None
        self._readers: dict[pathlib.Path, BinaryIO] = {}
        self._load()

    # -- index maintenance -------------------------------------------------

    def _segments_dir(self) -> pathlib.Path:
        return self.root / "segments"

    def _load(self) -> None:
        """Apply every new index entry on disk (new files and growth)."""
        base = self._segments_dir()
        if not base.is_dir():
            return
        for idx_path in sorted(base.glob("*.idx")):
            self._apply(idx_path)

    def _apply(self, idx_path: pathlib.Path) -> None:
        try:
            size = idx_path.stat().st_size
        except OSError:
            return
        start = self._consumed.get(idx_path, 0)
        usable = size - size % INDEX_DTYPE.itemsize  # ignore torn tail
        if usable <= start:
            return
        if usable - start >= _MMAP_THRESHOLD:
            mapped = np.memmap(idx_path, dtype=np.uint8, mode="r")
            entries = mapped[start:usable].view(INDEX_DTYPE)
        else:
            with open(idx_path, "rb") as handle:
                handle.seek(start)
                entries = np.frombuffer(
                    handle.read(usable - start), dtype=INDEX_DTYPE
                )
        seg_path = idx_path.with_suffix(".seg")
        try:
            seg_size = seg_path.stat().st_size
        except OSError:
            seg_size = 0
        offsets = entries["offset"].astype(np.int64)
        lengths = entries["length"].astype(np.int64)
        # An entry pointing past the segment's current end means its
        # record bytes have not landed (or were truncated by a crash):
        # stop there; a later refresh retries from that point.
        invalid = np.nonzero((offsets + lengths > seg_size) & (lengths > 0))[0]
        stop = int(invalid[0]) if invalid.size else len(entries)
        # One hex pass over the raw column (``.tobytes()`` keeps the
        # full 32 bytes -- numpy S-string *indexing* would drop the
        # trailing NULs that sha256 digests may legitimately end in).
        hex_blob = entries["fingerprint"][:stop].tobytes().hex()
        index = self._index
        for position in range(stop):
            fingerprint = hex_blob[position * 64 : position * 64 + 64]
            length = lengths[position]
            if length == 0:
                index.pop(fingerprint, None)  # tombstone
            else:
                index[fingerprint] = (
                    seg_path,
                    int(offsets[position]),
                    int(length),
                )
        self._consumed[idx_path] = start + stop * INDEX_DTYPE.itemsize

    def _ensure_writer(self) -> _SegmentWriter:
        if self._writer is None:
            write_marker(self.root, self.format)
            self._writer = _SegmentWriter(self._segments_dir())
        return self._writer

    def _read_payload(
        self, seg_path: pathlib.Path, offset: int, length: int
    ) -> bytes | None:
        handle = self._readers.get(seg_path)
        if handle is None:
            try:
                handle = open(seg_path, "rb")
            except OSError:
                return None
            self._readers[seg_path] = handle
        payload = os.pread(handle.fileno(), length, offset)
        return payload if len(payload) == length else None

    # -- StoreBackend API --------------------------------------------------

    def fetch(self, fingerprint: str) -> dict | None:
        """The document for a fingerprint (refreshes the index on miss)."""
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None:
                self._load()
                entry = self._index.get(fingerprint)
            if entry is None:
                return None
            payload = self._read_payload(*entry)
        if payload is None:
            return None
        try:
            return json.loads(payload)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    def put(
        self, fingerprint: str, document: dict, shard: str | None = None
    ) -> None:
        """Append one document to this instance's segment."""
        payload = json.dumps(document).encode()
        with self._lock:
            writer = self._ensure_writer()
            offset = writer.append(fingerprint, payload)
            self._index[fingerprint] = (
                writer.seg_path,
                offset,
                len(payload),
            )

    def delete(self, fingerprint: str) -> bool:
        """Tombstone a document; True when it was present."""
        with self._lock:
            if fingerprint not in self._index:
                self._load()
            if fingerprint not in self._index:
                return False
            self._ensure_writer().append(fingerprint, b"")  # tombstone
            self._index.pop(fingerprint, None)
            return True

    def _grouped_entries(
        self,
    ) -> list[tuple[pathlib.Path, list[tuple[int, str, int]]]]:
        """Live entries grouped per segment, in replay order.

        Returns ``[(seg path, [(offset, fingerprint, length), ...])]``
        with groups ordered by segment name and entries by offset --
        one dict pass plus per-group sorts of already-nearly-sorted
        offset lists, deliberately avoiding a global decorate-sort
        (and any per-entry ``pathlib`` attribute access, which is far
        too slow at 10k+ documents).
        """
        with self._lock:
            self._load()
            groups: dict[pathlib.Path, list[tuple[int, str, int]]] = {}
            for fingerprint, (path, offset, length) in self._index.items():
                group = groups.get(path)
                if group is None:
                    group = groups[path] = []
                group.append((offset, fingerprint, length))
        for group in groups.values():
            group.sort()
        return sorted(groups.items(), key=lambda item: item[0].name)

    def keys(self) -> Iterator[str]:
        """Every live fingerprint, in replay (segment, offset) order."""
        for _, group in self._grouped_entries():
            for _, fingerprint, _ in group:
                yield fingerprint

    def scan(self) -> Iterator[tuple[str, dict]]:
        """Every live document, read segment-by-segment sequentially.

        Each segment is mmap'd once and its records are parsed in
        chunked *batch* ``json.loads`` calls (one synthetic JSON array
        per chunk), which amortizes the per-call decoder overhead that
        dominates small-document scans.  A chunk containing a corrupt
        payload falls back to per-record parsing so intact neighbors
        still stream out.
        """
        for seg_path, entries in self._grouped_entries():
            try:
                with open(seg_path, "rb") as handle:
                    mapped = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
            except (OSError, ValueError):
                continue
            with mapped:
                for chunk_start in range(0, len(entries), _SCAN_CHUNK):
                    chunk = entries[chunk_start : chunk_start + _SCAN_CHUNK]
                    payloads = [
                        mapped[offset : offset + length]
                        for offset, _, length in chunk
                    ]
                    try:
                        documents = json.loads(
                            b"[" + b",".join(payloads) + b"]"
                        )
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        documents = None
                    if documents is None:
                        for (_, fingerprint, _), payload in zip(
                            chunk, payloads
                        ):
                            try:
                                yield fingerprint, json.loads(payload)
                            except (UnicodeDecodeError, json.JSONDecodeError):
                                continue
                    else:
                        for (_, fingerprint, _), document in zip(
                            chunk, documents
                        ):
                            yield fingerprint, document

    def count(self) -> int:
        """Number of live documents."""
        with self._lock:
            self._load()
            return len(self._index)

    def timestamp(self, fingerprint: str) -> float | None:
        """The owning segment file's mtime (an upper bound per record).

        Segment records carry no per-record clock; the segment file's
        mtime (time of its *latest* append) over-estimates every
        record's age-relevant write time, so age-based retention stays
        conservative: a document is only reported old when its whole
        segment has been quiet that long.
        """
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None:
                self._load()
                entry = self._index.get(fingerprint)
        if entry is None:
            return None
        try:
            return entry[0].stat().st_mtime
        except OSError:
            return None

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._index:
                return True
            self._load()
            return fingerprint in self._index

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Rewrite live documents into one fresh segment pair.

        Reclaims tombstoned and duplicated records.  Requires
        exclusive access to the root (other writers would lose their
        open segments); an ``O_EXCL`` lock file enforces one compactor
        at a time.  Returns the number of live documents kept.
        """
        base = self._segments_dir()
        if not base.is_dir():
            return 0
        lock_path = base / ".compact.lock"
        try:
            lock_fd = os.open(
                lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            raise RuntimeError(
                f"another compaction holds {lock_path}; remove the lock "
                "file if it is stale"
            ) from None
        try:
            with self._lock:
                live = [(fp, doc) for fp, doc in self.scan()]
                old_files = [
                    path
                    for path in base.iterdir()
                    if path.suffix in (".seg", ".idx")
                ]
                self.close()
                self._index.clear()
                self._consumed.clear()
                for fingerprint, document in live:
                    self.put(fingerprint, document)
                keep = (
                    {self._writer.seg_path, self._writer.idx_path}
                    if self._writer is not None
                    else set()
                )
                for path in old_files:
                    if path not in keep:
                        path.unlink(missing_ok=True)
            return len(live)
        finally:
            os.close(lock_fd)
            lock_path.unlink(missing_ok=True)

    def close(self) -> None:
        """Close this instance's writer and cached read handles."""
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            for handle in self._readers.values():
                handle.close()
            self._readers.clear()
