"""Pluggable result-store backends for the experiment orchestrator.

Public surface:

* :class:`ResultStore` -- memory layer + persistent backend, what the
  orchestrator resolves runs against.
* :func:`open_backend` / :func:`detect_format` -- backend selection
  and on-disk format auto-detection.
* :class:`JsonFileBackend`, :class:`ShardedBackend`,
  :class:`SegmentBackend` -- the three layouts (see each module and
  DESIGN.md for formats and concurrency discipline).
* :mod:`repro.store.maintenance` -- ``ls``/``gc``/``migrate`` helpers
  behind the ``repro store`` CLI.
"""

from repro.store.base import (
    BACKEND_ENV_VAR,
    KNOWN_FORMATS,
    MARKER_NAME,
    STORE_ENV_VAR,
    STORE_VERSION,
    StoreBackend,
    detect_format,
    shard_slug,
)
from repro.store.core import ResultStore, open_backend
from repro.store.jsonfile import JsonFileBackend
from repro.store.maintenance import (
    DocumentInfo,
    MigrationReport,
    collect_garbage,
    list_documents,
    migrate_store,
    parse_age,
)
from repro.store.segment import INDEX_DTYPE, RECORD_HEADER, SegmentBackend
from repro.store.sharded import DEFAULT_SHARD, ShardedBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_SHARD",
    "DocumentInfo",
    "INDEX_DTYPE",
    "JsonFileBackend",
    "KNOWN_FORMATS",
    "MARKER_NAME",
    "MigrationReport",
    "RECORD_HEADER",
    "ResultStore",
    "STORE_ENV_VAR",
    "STORE_VERSION",
    "SegmentBackend",
    "ShardedBackend",
    "StoreBackend",
    "collect_garbage",
    "detect_format",
    "list_documents",
    "migrate_store",
    "open_backend",
    "parse_age",
    "shard_slug",
]
