"""Store maintenance: listing, gc (with retention policy), migration.

These helpers power the ``repro store`` CLI subcommand.  They operate
on raw backends (not :class:`~repro.store.core.ResultStore`), so they
see documents exactly as persisted.

Filtering model
---------------

Documents are labeled two ways:

* the *request descriptor* (hashed into the fingerprint) carries the
  pack's content identity -- schema, version, kind, sha256 -- for any
  run that named a workload pack;
* the optional *meta* envelope (written since the backend split,
  never hashed) additionally carries the pack *name* and the shard
  key.

``ls``/``gc`` filters therefore match pack versions and sha prefixes
on every document, while pack-*name* filters only match documents new
enough to carry meta (older documents deliberately keyed renames
identically, so their names are unknowable).
"""

from __future__ import annotations

import json
import pathlib
import re
import time
from dataclasses import dataclass

from repro.store.base import StoreBackend
from repro.store.core import open_backend

#: Age-suffix multipliers accepted by :func:`parse_age`.
_AGE_UNITS = {
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 7 * 86400.0,
}


def parse_age(text: str) -> float:
    """Parse a human age spec (``30d``, ``12h``, ``45m``...) to seconds.

    A bare number means seconds.  Raises ``ValueError`` on anything
    else -- the gc CLI turns that into a usage error.
    """
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smhdw]?)\s*", str(text))
    if not match:
        raise ValueError(
            f"bad age {text!r}; use <number>[s|m|h|d|w], e.g. 30d or 12h"
        )
    value, unit = match.groups()
    return float(value) * _AGE_UNITS[unit or "s"]


@dataclass(frozen=True)
class DocumentInfo:
    """One store document's identity labels, for listing/filtering."""

    fingerprint: str
    policy: str | None
    pack_name: str | None
    pack_version: int | None
    pack_sha256: str | None
    shard: str | None
    campaign: str | None = None

    @classmethod
    def from_document(cls, fingerprint: str, document: dict) -> "DocumentInfo":
        request = document.get("request") or {}
        meta = document.get("meta") or {}
        pack = request.get("pack") or {}
        meta_pack = meta.get("pack") or {}
        policy = (request.get("policy") or {}).get("name")
        return cls(
            fingerprint=fingerprint,
            policy=policy,
            pack_name=meta_pack.get("name"),
            pack_version=pack.get("version", meta_pack.get("version")),
            pack_sha256=pack.get("sha256", meta_pack.get("sha256")),
            shard=meta.get("shard"),
            campaign=meta.get("campaign"),
        )


def matches(
    info: DocumentInfo,
    pack: str | None = None,
    pack_version: int | None = None,
    sha: str | None = None,
    fingerprint: str | None = None,
    campaign: str | None = None,
) -> bool:
    """Whether a document matches every given filter (AND semantics)."""
    if pack is not None and info.pack_name != pack:
        return False
    if campaign is not None and info.campaign != campaign:
        # Like pack-name filters, campaign labels live in the meta
        # envelope: only artifacts an in-process suite run stamped
        # match (service-path artifacts are audited via the ledger).
        return False
    if pack_version is not None and info.pack_version != pack_version:
        return False
    if sha is not None and not (
        info.pack_sha256 or ""
    ).startswith(sha):
        return False
    if fingerprint is not None and not info.fingerprint.startswith(
        fingerprint
    ):
        return False
    return True


def list_documents(backend: StoreBackend, **filters) -> list[DocumentInfo]:
    """Every document in ``backend`` matching the filters."""
    rows = []
    for fingerprint, document in backend.scan():
        info = DocumentInfo.from_document(fingerprint, document)
        if matches(info, **filters):
            rows.append(info)
    return rows


def collect_garbage(
    backend: StoreBackend,
    dry_run: bool = False,
    older_than: float | None = None,
    keep_latest: int | None = None,
    now: float | None = None,
    **filters,
) -> list[str]:
    """Delete (or, with ``dry_run``, just report) matching documents.

    Retention policy (applied after the identity filters):

    ``older_than``
        Only collect documents whose backend timestamp
        (:meth:`~repro.store.base.StoreBackend.timestamp`) is at least
        this many seconds before ``now``.  Timestamps are conservative
        (segment stores report per-segment-file granularity), so a
        document that *might* be newer is spared; one with no
        timestamp at all is never age-collected.
    ``keep_latest``
        Spare the N newest documents of every pack name (documents
        without pack meta group under ``None``), newest-first by
        timestamp, with the backend's replay order
        (:meth:`~repro.store.base.StoreBackend.keys`) breaking ties --
        segment stores stamp every record in a segment file with one
        mtime, but replay their records in append order, so "newest"
        stays meaningful there too.  Applies on top of ``older_than``:
        a document must be old enough *and* outside its pack's keep
        set to go.
    """
    matching = list_documents(backend, **filters)
    if older_than is not None or keep_latest is not None:
        reference = time.time() if now is None else now
        stamped = [
            (info, backend.timestamp(info.fingerprint)) for info in matching
        ]
        if keep_latest is not None:
            replay_rank = {
                fingerprint: rank
                for rank, fingerprint in enumerate(backend.keys())
            }
            by_pack: dict[str | None, list[tuple[float, int, str]]] = {}
            for info, stamp in stamped:
                by_pack.setdefault(info.pack_name, []).append(
                    (stamp if stamp is not None else float("-inf"),
                     replay_rank.get(info.fingerprint, -1),
                     info.fingerprint)
                )
            spared: set[str] = set()
            for group in by_pack.values():
                group.sort(reverse=True)
                spared.update(
                    fp for _, _, fp in group[: max(keep_latest, 0)]
                )
            stamped = [
                (info, stamp)
                for info, stamp in stamped
                if info.fingerprint not in spared
            ]
        fingerprints = [
            info.fingerprint
            for info, stamp in stamped
            if older_than is None
            or (stamp is not None and reference - stamp >= older_than)
        ]
    else:
        fingerprints = [info.fingerprint for info in matching]
    if not dry_run:
        for fingerprint in fingerprints:
            backend.delete(fingerprint)
    return fingerprints


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one store migration."""

    migrated: int
    mismatched: tuple[str, ...]

    @property
    def verified(self) -> bool:
        """True when every document round-tripped bit-identically."""
        return not self.mismatched


def migrate_store(
    source: pathlib.Path | str,
    dest: pathlib.Path | str,
    to: str = "segment",
    source_backend: str = "auto",
) -> MigrationReport:
    """Copy every document from ``source`` into a ``to``-format ``dest``.

    The copy preserves documents verbatim (same JSON trees, same
    fingerprints, shard hints taken from each document's meta), then
    re-reads every fingerprint from the destination and compares the
    canonical JSON serialization -- the bit-identity check behind
    ``repro store migrate``.

    Self-migration is refused: with ``dest`` equal to ``source`` --
    or nested inside it, or containing it -- the writer's puts land in
    the tree the reader is scanning, which can double-count documents
    or corrupt the layout mid-scan.  Both paths are resolved before
    the check, so symlinked or relative spellings of the same root are
    caught too.
    """
    source_resolved = pathlib.Path(source).resolve()
    dest_resolved = pathlib.Path(dest).resolve()
    if (
        source_resolved == dest_resolved
        or dest_resolved.is_relative_to(source_resolved)
        or source_resolved.is_relative_to(dest_resolved)
    ):
        raise ValueError(
            f"cannot migrate {str(source)!r} into {str(dest)!r}: source "
            "and destination resolve to overlapping paths; migrating a "
            "store into itself would interleave reads and writes -- "
            "pick a destination outside the source tree"
        )
    reader = open_backend(source, source_backend)
    writer = open_backend(dest, to)
    migrated = 0
    for fingerprint, document in reader.scan():
        shard = (document.get("meta") or {}).get("shard")
        writer.put(fingerprint, document, shard=shard)
        migrated += 1
    mismatched = []
    for fingerprint, document in reader.scan():
        copied = writer.fetch(fingerprint)
        if json.dumps(copied, sort_keys=True) != json.dumps(
            document, sort_keys=True
        ):
            mismatched.append(fingerprint)
    return MigrationReport(migrated=migrated, mismatched=tuple(mismatched))
