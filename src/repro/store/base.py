"""Shared result-store contract: constants, protocol, format detection.

A store *backend* maps run fingerprints (SHA-256 hex digests) to JSON
documents.  Three implementations live in this package:

* :class:`~repro.store.jsonfile.JsonFileBackend` -- the original
  one-document-per-file layout (``root/v1/<fp[:2]>/<fp>.json``), kept
  for compatibility and auto-detected on warm roots from earlier
  versions.
* :class:`~repro.store.sharded.ShardedBackend` -- the per-file layout
  fanned out over multiple roots keyed by a *shard* label (the run's
  pack or config name), so unrelated experiment families never share
  a directory tree.
* :class:`~repro.store.segment.SegmentBackend` -- append-only packed
  segments plus a fixed-width, mmap-able offset index; the scaling
  path for millions of documents.

Auto-detection rules (``detect_format``)
----------------------------------------

1. A ``STORE_FORMAT.json`` marker names the format explicitly
   (written by the sharded and segment backends on first put).
2. A ``segments/`` directory means ``segment``; a ``shards/``
   directory means ``sharded``.
3. A versioned document directory (``v1/``, ...) means ``json`` --
   every store written before the backend split looks like this.
4. Otherwise the root is virgin and the caller's default applies
   (``json``, preserving the historical layout for new roots).
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Iterator, Protocol, runtime_checkable

#: Version of the on-disk schema *and* of the engine numerics contract.
#: Bump on any change that alters stored bytes or simulated numbers.
STORE_VERSION = 1

#: Environment variable naming a default on-disk store root.
STORE_ENV_VAR = "REPRO_RESULT_STORE"

#: Environment variable naming the backend format for new store roots.
BACKEND_ENV_VAR = "REPRO_STORE_BACKEND"

#: Marker file stamping a root with its backend format.
MARKER_NAME = "STORE_FORMAT.json"

#: Formats accepted by :func:`repro.store.open_backend` (plus "auto").
KNOWN_FORMATS = ("json", "sharded", "segment")


@runtime_checkable
class StoreBackend(Protocol):
    """Fingerprint -> JSON-document storage.

    Documents are plain dicts (the orchestrator's run documents:
    store version, fingerprint, request descriptor, serialized result,
    optional metadata).  Backends store and return them verbatim --
    validation lives in :class:`repro.store.ResultStore`.
    """

    format: str
    root: pathlib.Path

    def fetch(self, fingerprint: str) -> dict | None:
        """The document for ``fingerprint``, or None (missing/corrupt)."""

    def put(
        self, fingerprint: str, document: dict, shard: str | None = None
    ) -> None:
        """Store ``document`` under ``fingerprint`` (atomic/durable).

        ``shard`` is a routing hint (pack/config name); backends
        without sharding ignore it.
        """

    def delete(self, fingerprint: str) -> bool:
        """Remove a document; True when something was deleted."""

    def keys(self) -> Iterator[str]:
        """Every stored fingerprint (deterministic order)."""

    def scan(self) -> Iterator[tuple[str, dict]]:
        """Every ``(fingerprint, document)`` pair (deterministic order)."""

    def count(self) -> int:
        """Number of stored documents."""

    def timestamp(self, fingerprint: str) -> float | None:
        """Best-known write time of a document (unix seconds), or None.

        Backends answer from filesystem metadata: per-file layouts
        report the document file's mtime exactly; the segment layout
        reports its segment file's mtime, an *upper bound* on every
        record in it (a long-lived writer appends to one file, so its
        records all look as new as the latest append).  Age-based
        retention therefore never deletes a document that might be
        newer than claimed -- it can only be conservative.
        """

    def __contains__(self, fingerprint: str) -> bool: ...


def shard_slug(name: str | None) -> str:
    """A filesystem-safe shard directory name for ``name``.

    Empty/None names collapse to ``default``; anything outside
    ``[A-Za-z0-9._-]`` becomes ``-`` and the result is length-capped
    so arbitrary pack names cannot escape the shard tree.
    """
    if not name:
        return "default"
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", str(name)).strip("-.")
    return slug[:64] or "default"


def write_marker(root: pathlib.Path, fmt: str) -> None:
    """Stamp ``root`` as holding a ``fmt`` store (idempotent)."""
    root.mkdir(parents=True, exist_ok=True)
    marker = root / MARKER_NAME
    if not marker.exists():
        marker.write_text(
            json.dumps({"format": fmt, "store_version": STORE_VERSION})
            + "\n"
        )


def read_marker(root: pathlib.Path) -> str | None:
    """The format a ``STORE_FORMAT.json`` marker names, if present."""
    try:
        payload = json.loads((root / MARKER_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    fmt = payload.get("format")
    return fmt if isinstance(fmt, str) else None


def detect_format(root: pathlib.Path | str) -> str | None:
    """The backend format stored under ``root``; None for a virgin root.

    See the module docstring for the precedence rules.
    """
    root = pathlib.Path(root)
    marked = read_marker(root)
    if marked is not None:
        return marked
    if (root / "segments").is_dir():
        return "segment"
    if (root / "shards").is_dir():
        return "sharded"
    if (root / f"v{STORE_VERSION}").is_dir() or any(root.glob("v[0-9]*")):
        return "json"
    return None
