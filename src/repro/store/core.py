"""The result store: memory layer + pluggable persistent backend.

:class:`ResultStore` is what the orchestrator talks to.  It keeps the
in-process memory layer, the hit/miss/write counters and the document
envelope (store version, fingerprint, request descriptor, serialized
result, optional metadata), and delegates persistence to one of the
:mod:`repro.store` backends.  ``backend="auto"`` resolves through
:func:`repro.store.base.detect_format`, so a warm root written by any
earlier version (the per-file JSON layout) keeps resolving
transparently, while new roots can opt into the sharded or segment
layouts.
"""

from __future__ import annotations

import os
import pathlib
import threading

from repro.sim.results import RunResult
from repro.store.base import (
    BACKEND_ENV_VAR,
    KNOWN_FORMATS,
    STORE_ENV_VAR,
    STORE_VERSION,
    StoreBackend,
    detect_format,
)
from repro.store.jsonfile import JsonFileBackend
from repro.store.segment import SegmentBackend
from repro.store.sharded import ShardedBackend

_BACKENDS = {
    "json": JsonFileBackend,
    "jsonfile": JsonFileBackend,
    "sharded": ShardedBackend,
    "segment": SegmentBackend,
}


def open_backend(
    root: pathlib.Path | str, backend: str = "auto"
) -> StoreBackend:
    """Open the store backend for ``root``.

    ``"auto"`` uses the detected on-disk format (default ``json`` for
    a virgin root).  Naming a format explicitly on a root that already
    holds a different one is refused -- mixing layouts in one tree
    would corrupt both.
    """
    root = pathlib.Path(root)
    detected = detect_format(root)
    name = backend or "auto"
    if name == "auto":
        name = detected or "json"
    elif name in ("json", "jsonfile"):
        name = "json"
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r}; choose from "
            f"{('auto', *KNOWN_FORMATS)}"
        )
    if detected is not None and _BACKENDS[name].format != detected:
        raise ValueError(
            f"store root {os.fspath(root)!r} holds a {detected!r} store; "
            f"refusing to open it as {name!r}"
        )
    return _BACKENDS[name](root)


class ResultStore:
    """Fingerprint-keyed result storage: memory layer + optional backend.

    Parameters
    ----------
    root:
        Directory for the persistent layer (created lazily).  ``None``
        keeps results in memory only.
    backend:
        Persistent layout: ``"auto"`` (detect; new roots get the
        per-file ``json`` layout), ``"json"``, ``"sharded"``,
        ``"segment"`` -- or an already-constructed
        :class:`~repro.store.base.StoreBackend`.

    Thread safety: ``put``/``fetch`` may be called from the
    orchestrator's completion callbacks while the submitting thread
    keeps resolving, so the memory layer and counters are
    lock-protected (backends serialize their own writes).
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        backend: str | StoreBackend = "auto",
    ) -> None:
        if not isinstance(backend, str):
            # An already-constructed backend wins regardless of root
            # (its own root is authoritative).
            self._backend: StoreBackend | None = backend
            self.root = backend.root
        elif root is None:
            self.root = None
            self._backend = None
        else:
            self.root = pathlib.Path(root)
            self._backend = open_backend(self.root, backend)
        self._memory: dict[str, RunResult] = {}
        self._lock = threading.RLock()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.writes = 0

    @classmethod
    def from_environment(cls) -> "ResultStore":
        """Store rooted at ``$REPRO_RESULT_STORE`` (memory-only if unset).

        ``$REPRO_STORE_BACKEND`` names the backend format (default:
        auto-detect).
        """
        root = os.environ.get(STORE_ENV_VAR) or None
        backend = os.environ.get(BACKEND_ENV_VAR) or "auto"
        return cls(root, backend=backend)

    @property
    def backend(self) -> StoreBackend | None:
        """The persistent backend (None when memory-only)."""
        return self._backend

    def path_for(self, fingerprint: str) -> pathlib.Path | None:
        """On-disk document path, for backends that keep one per run."""
        if self._backend is None:
            return None
        path_for = getattr(self._backend, "path_for", None)
        return path_for(fingerprint) if path_for is not None else None

    def fetch(self, fingerprint: str) -> tuple[RunResult, str] | None:
        """Look a fingerprint up; returns ``(result, source)`` or None."""
        with self._lock:
            cached = self._memory.get(fingerprint)
            if cached is not None:
                self.hits_memory += 1
                return cached, "memory"
        if self._backend is not None:
            payload = self._backend.fetch(fingerprint)
            if (
                payload is not None
                and payload.get("store_version") == STORE_VERSION
                and payload.get("fingerprint") == fingerprint
            ):
                result = RunResult.from_dict(payload["result"])
                with self._lock:
                    self._memory[fingerprint] = result
                    self.hits_disk += 1
                return result, "disk"
        with self._lock:
            self.misses += 1
        return None

    def put(
        self,
        fingerprint: str,
        result: RunResult,
        descriptor: dict | None = None,
        meta: dict | None = None,
    ) -> None:
        """Record a result in memory and (when backed) persistently.

        ``meta`` carries store-side labels that deliberately stay out
        of the fingerprint -- the shard routing key and the workload
        pack's name/version (what ``repro store ls``/``gc`` filter
        on).  Writes are atomic per backend discipline.
        """
        with self._lock:
            self._memory[fingerprint] = result
            self.writes += 1
        if self._backend is None:
            return
        document = {
            "store_version": STORE_VERSION,
            "fingerprint": fingerprint,
            "request": descriptor or {},
            "result": result.to_dict(),
        }
        if meta:
            document["meta"] = meta
        self._backend.put(
            fingerprint, document, shard=(meta or {}).get("shard")
        )

    def documents(self):
        """Every persisted ``(fingerprint, document)`` pair."""
        if self._backend is None:
            return iter(())
        return self._backend.scan()

    def clear_memory(self) -> None:
        """Drop the in-memory layer (persistent documents survive)."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/write counters (for benchmarks and logs)."""
        with self._lock:
            return {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "writes": self.writes,
            }

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        return self._backend is not None and fingerprint in self._backend

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)
