"""Multi-root sharded store: per-file documents fanned out by shard key.

Layout::

    root/STORE_FORMAT.json            # {"format": "sharded", ...}
    root/shards/<shard>/v1/<fp[:2]>/<fingerprint>.json

Each shard directory is a complete
:class:`~repro.store.jsonfile.JsonFileBackend` root.  The shard key is
a *label*, not part of a run's identity: the orchestrator derives it
from the run's workload-pack name (or, for synthetic runs, the config
name), so one experiment family's millions of documents never share a
directory fan-out with another's.  Because the key is only a routing
hint, fetches by bare fingerprint probe the shards (cheap: shard
counts are small -- one per pack/config family) and remember where
each fingerprint was found.
"""

from __future__ import annotations

import pathlib
from typing import Iterator

from repro.store.base import shard_slug, write_marker
from repro.store.jsonfile import JsonFileBackend

#: Shard used when a put carries no routing hint.
DEFAULT_SHARD = "default"


class ShardedBackend:
    """Per-file JSON documents sharded across multiple roots."""

    format = "sharded"

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)
        self._shards: dict[str, JsonFileBackend] = {}
        self._located: dict[str, str] = {}  # fingerprint -> shard name

    def _shard(self, name: str) -> JsonFileBackend:
        backend = self._shards.get(name)
        if backend is None:
            backend = JsonFileBackend(self.root / "shards" / name)
            self._shards[name] = backend
        return backend

    def _discover(self) -> dict[str, JsonFileBackend]:
        """Register every shard directory present on disk."""
        base = self.root / "shards"
        if base.is_dir():
            for entry in sorted(base.iterdir()):
                if entry.is_dir():
                    self._shard(entry.name)
        return self._shards

    def shards(self) -> list[str]:
        """The shard names present on disk (sorted)."""
        return sorted(self._discover())

    def path_for(self, fingerprint: str) -> pathlib.Path | None:
        """The existing document path for a fingerprint, if stored."""
        shard = self._locate(fingerprint)
        if shard is None:
            return None
        return self._shard(shard).path_for(fingerprint)

    def _locate(self, fingerprint: str) -> str | None:
        known = self._located.get(fingerprint)
        if known is not None and fingerprint in self._shard(known):
            return known
        for name in sorted(self._discover()):
            if fingerprint in self._shard(name):
                self._located[fingerprint] = name
                return name
        return None

    def fetch(self, fingerprint: str) -> dict | None:
        """The document for a fingerprint, probing shards as needed."""
        shard = self._locate(fingerprint)
        if shard is None:
            return None
        return self._shard(shard).fetch(fingerprint)

    def put(
        self, fingerprint: str, document: dict, shard: str | None = None
    ) -> None:
        """Write one document into the hinted (or default) shard.

        A fingerprint already stored under another shard is
        overwritten *in place* -- shard keys are routing hints, and a
        rerun arriving with a different hint (e.g. a renamed pack,
        which keeps its fingerprint by design) must not duplicate the
        document across shards.
        """
        write_marker(self.root, self.format)
        name = self._locate(fingerprint)
        if name is None:
            name = shard_slug(shard) if shard else DEFAULT_SHARD
        self._shard(name).put(fingerprint, document)
        self._located[fingerprint] = name

    def delete(self, fingerprint: str) -> bool:
        """Delete a document from whichever shard holds it."""
        shard = self._locate(fingerprint)
        if shard is None:
            return False
        self._located.pop(fingerprint, None)
        return self._shard(shard).delete(fingerprint)

    def keys(self) -> Iterator[str]:
        """Every stored fingerprint, shard by shard."""
        for name in sorted(self._discover()):
            yield from self._shard(name).keys()

    def scan(self) -> Iterator[tuple[str, dict]]:
        """Every (fingerprint, document) pair, shard by shard."""
        for name in sorted(self._discover()):
            yield from self._shard(name).scan()

    def count(self) -> int:
        """Number of stored documents across all shards."""
        return sum(1 for _ in self.keys())

    def timestamp(self, fingerprint: str) -> float | None:
        """The owning shard's per-document file mtime."""
        shard = self._locate(fingerprint)
        if shard is None:
            return None
        return self._shard(shard).timestamp(fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        return self._locate(fingerprint) is not None
