"""The original per-file JSON store layout, as a pluggable backend.

One document per fingerprint::

    root/v1/<fp[:2]>/<fingerprint>.json

``v1`` is :data:`~repro.store.base.STORE_VERSION`; bumping it orphans
every old entry at once.  Writes are atomic (temp file + rename), so a
crashed run never leaves a truncated document behind and concurrent
writers of the same fingerprint race to an intact winner.  This layout
is what every store root written before the backend split contains, so
it is the auto-detected default -- see
:func:`repro.store.base.detect_format`.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Iterator

from repro.store.base import STORE_VERSION


class JsonFileBackend:
    """One JSON document per fingerprint under ``root/v1/``."""

    format = "json"

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, fingerprint: str) -> pathlib.Path:
        """On-disk document path for a fingerprint."""
        return (
            self.root
            / f"v{STORE_VERSION}"
            / fingerprint[:2]
            / f"{fingerprint}.json"
        )

    def fetch(self, fingerprint: str) -> dict | None:
        """The document for a fingerprint (None if missing/corrupt)."""
        try:
            return json.loads(self.path_for(fingerprint).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def put(
        self, fingerprint: str, document: dict, shard: str | None = None
    ) -> None:
        """Write one document atomically (temp file + rename)."""
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise

    def delete(self, fingerprint: str) -> bool:
        """Unlink a document; True when one existed."""
        try:
            self.path_for(fingerprint).unlink()
        except OSError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        """Every stored fingerprint, sorted."""
        base = self.root / f"v{STORE_VERSION}"
        for path in sorted(base.glob("*/*.json")):
            yield path.stem

    def scan(self) -> Iterator[tuple[str, dict]]:
        """Every (fingerprint, document) pair, sorted by fingerprint."""
        for fingerprint in self.keys():
            document = self.fetch(fingerprint)
            if document is not None:
                yield fingerprint, document

    def count(self) -> int:
        """Number of stored documents."""
        return sum(1 for _ in self.keys())

    def timestamp(self, fingerprint: str) -> float | None:
        """The document file's mtime (exact per-document write time)."""
        try:
            return self.path_for(fingerprint).stat().st_mtime
        except OSError:
            return None

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()
