"""Workload substrate: VMs, arrival process, CPU traces, data volumes.

This package synthesizes the workload the paper drives its evaluation
with (Section V-A):

* VM utilization sampled every 5 seconds for one day and extended to a
  week by adding statistical variance with the same mean
  (:mod:`repro.workload.traces`),
* Poisson arrivals and exponential lifetimes
  (:mod:`repro.workload.arrivals`),
* migration image sizes of 2/4/8 GB with probabilities 60/30/10 %
  (:mod:`repro.workload.vm`),
* pairwise data volumes drawn from a log-normal distribution with a
  10 MB mean and uniform variance in [1, 4]
  (:mod:`repro.workload.datacorr`),
* and versioned, content-hashed *trace packs* that bundle a trace
  source with its data-correlation parameters behind the single
  :class:`~repro.workload.packs.WorkloadProvider` layer the engine and
  orchestrator consume (:mod:`repro.workload.packs`).
"""

from repro.workload.arrivals import ArrivalModel, VMPopulation
from repro.workload.datacorr import DataCorrelationProcess, VolumeMatrix
from repro.workload.packs import (
    DataCorrelationParams,
    LibraryWorkload,
    RecordedTraceSource,
    SyntheticTraceSource,
    TracePack,
    WorkloadProvider,
    available_packs,
    default_pack,
    get_pack,
    register_pack,
)
from repro.workload.recorded import RecordedTraceLibrary, load_utilization_csv
from repro.workload.traces import ApplicationProfile, TraceLibrary
from repro.workload.vm import AppType, VirtualMachine, sample_image_size_gb

__all__ = [
    "AppType",
    "ApplicationProfile",
    "ArrivalModel",
    "DataCorrelationParams",
    "DataCorrelationProcess",
    "LibraryWorkload",
    "RecordedTraceLibrary",
    "RecordedTraceSource",
    "SyntheticTraceSource",
    "TraceLibrary",
    "TracePack",
    "VMPopulation",
    "VirtualMachine",
    "VolumeMatrix",
    "WorkloadProvider",
    "available_packs",
    "default_pack",
    "get_pack",
    "load_utilization_csv",
    "register_pack",
    "sample_image_size_gb",
]
