"""Versioned, content-hashed workload packs behind one provider layer.

The paper's evaluation consumes two workload inputs: per-VM utilization
traces (a real DC recording extended one day -> one week, Section V)
and the runtime-varying pairwise data correlations (Section V-A).
Historically the engine special-cased them (``trace_library or
TraceLibrary(...)`` plus a hard-wired
:class:`~repro.workload.datacorr.DataCorrelationProcess`), which left
recorded workloads without an identity the experiment orchestrator
could fingerprint.

This module unifies all workload sources behind one provider protocol:

* :class:`WorkloadProvider` is what the simulation engine consumes --
  anything that can configure an experiment, build a trace library and
  build a volume process;
* :class:`TracePack` is the canonical provider: a *named*, *versioned*
  bundle of a trace source (synthetic generator parameters or a
  recorded utilization matrix), data-correlation parameters and an
  optional application-mix override, identified by a SHA-256 content
  hash;
* a process-wide registry maps pack names to packs so the CLI can
  select workloads by name (``--pack``) and list what is available.

Content-hash scheme
-------------------

``TracePack.sha256`` digests a canonical byte stream: the pack schema
version, the pack version, the trace source (kind tag plus either the
generator parameters or the recorded matrix's shape/dtype/raw bytes
and its slotting/extension parameters), the data-correlation
parameters, and the app-mix override.  Names deliberately do **not**
feed the hash -- two packs with the same content but different names
share a sha256, making renames cache-compatible.  The orchestrator
folds ``content_descriptor()`` (schema, version, kind, sha256; no
name) into :class:`~repro.experiments.orchestrator.RunRequest`
fingerprints, so recorded-workload runs resolve from the result store
exactly like synthetic ones and keep resolving after a rename.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from repro.workload.datacorr import DataCorrelationProcess
from repro.workload.recorded import RecordedTraceLibrary, load_utilization_csv
from repro.workload.traces import TraceLibrary
from repro.workload.vm import AppType

#: Version of the pack descriptor/hash schema (bump when the hashed
#: byte stream or the descriptor layout changes).
PACK_SCHEMA_VERSION = 1

#: Name of the default (synthetic) pack in the registry.
DEFAULT_PACK_NAME = "synthetic"


def _hash_items(*items: object) -> "hashlib._Hash":
    """SHA-256 over a canonical, length-prefixed encoding of ``items``.

    Scalars are encoded through ``repr`` (exact for ints/bools and for
    floats since repr is shortest-roundtrip), arrays through their
    shape, dtype and C-order bytes.  Length prefixes make the encoding
    injective: no concatenation of two item streams can collide.
    """
    digest = hashlib.sha256()
    for item in items:
        if isinstance(item, np.ndarray):
            token = (
                f"ndarray:{item.shape}:{item.dtype.str}".encode()
                + np.ascontiguousarray(item).tobytes()
            )
        else:
            token = repr(item).encode()
        digest.update(f"{len(token)}:".encode())
        digest.update(token)
    return digest


@dataclass(frozen=True)
class DataCorrelationParams:
    """The :class:`DataCorrelationProcess` knobs a pack pins down.

    Defaults reproduce the process's own defaults, so the default pack
    is bit-identical to the engine's historical hard-wired process.
    """

    background_fraction: float = 0.005
    background_scale: float = 0.1
    dense: bool = False
    modulation_period_slots: float = 24.0
    jitter_sigma: float = 0.3

    def build(self, seed: int, vectorized: bool = True) -> DataCorrelationProcess:
        """A volume process with these parameters rooted at ``seed``."""
        return DataCorrelationProcess(
            background_fraction=self.background_fraction,
            background_scale=self.background_scale,
            dense=self.dense,
            modulation_period_slots=self.modulation_period_slots,
            jitter_sigma=self.jitter_sigma,
            seed=seed,
            vectorized=vectorized,
        )

    def content_items(self) -> tuple[object, ...]:
        """The fields, in declaration order, for content hashing."""
        return (
            "datacorr",
            self.background_fraction,
            self.background_scale,
            self.dense,
            self.modulation_period_slots,
            self.jitter_sigma,
        )


@dataclass(frozen=True)
class SyntheticTraceSource:
    """The library's synthetic trace generator as a pack source.

    Slot resolution and seeding follow the experiment config
    (``config.steps_per_slot`` and the engine's established
    ``config.seed + 1`` derivation), so the same pack serves every
    scale and seed while hashing only its own generator parameters.
    """

    extension_sigma: float = 0.05

    kind = "synthetic"

    def build(self, config) -> TraceLibrary:
        """A synthetic library matching the config's slotting and seed."""
        return TraceLibrary(
            steps_per_slot=config.steps_per_slot,
            extension_sigma=self.extension_sigma,
            seed=config.seed + 1,
        )

    def content_items(self) -> tuple[object, ...]:
        """Source identity for content hashing."""
        return (self.kind, self.extension_sigma)


@dataclass(frozen=True, eq=False)
class RecordedTraceSource:
    """A recorded utilization matrix (the paper's real-DC pipeline).

    Parameters mirror :class:`~repro.workload.recorded.RecordedTraceLibrary`
    plus the paper's one-day-to-one-week extension rule
    (:meth:`~repro.workload.recorded.RecordedTraceLibrary.extend_days`),
    applied at build time when ``extend_days > 1``.
    """

    utilization: np.ndarray
    steps_per_slot: int
    extend_days: int = 1
    extension_sigma: float = 0.05
    extend_seed: int = 0

    kind = "recorded"

    def __post_init__(self) -> None:
        # Private, read-only copy: the sha256 is computed lazily, so an
        # aliased caller array mutated after construction would
        # desynchronize the content hash from the served bytes.
        # Already-read-only float arrays are adopted without copying --
        # the shared-memory fan-out path (repro.workload.shm) relies on
        # this to keep worker-side restores zero-copy.
        matrix = np.asarray(self.utilization, dtype=float)
        if matrix.flags.writeable:
            if matrix is self.utilization:
                matrix = matrix.copy()
            matrix.flags.writeable = False
        # Validate eagerly so a bad matrix fails at pack construction,
        # not inside a worker process mid-batch.
        RecordedTraceLibrary(matrix, self.steps_per_slot)
        if self.extend_days < 1:
            raise ValueError("extend_days must be >= 1")
        object.__setattr__(self, "utilization", matrix)

    def build(self, config) -> RecordedTraceLibrary:
        """The recorded library, week-extended when configured."""
        library = RecordedTraceLibrary(self.utilization, self.steps_per_slot)
        if self.extend_days > 1:
            library = library.extend_days(
                self.extend_days, self.extension_sigma, seed=self.extend_seed
            )
        return library

    def content_items(self) -> tuple[object, ...]:
        """Source identity for content hashing (includes the matrix)."""
        return (
            self.kind,
            self.utilization,
            self.steps_per_slot,
            self.extend_days,
            self.extension_sigma,
            self.extend_seed,
        )


@runtime_checkable
class WorkloadProvider(Protocol):
    """What the simulation engine consumes in place of raw libraries."""

    def configure(self, config):
        """Return ``config`` with the provider's overrides applied."""

    def build_traces(self, config):
        """Trace library (``slot_demand``/``demand_matrix``/``slot_mean``)."""

    def build_volumes(self, config, vectorized: bool = True):
        """The pairwise data-volume process for ``config``."""

    def descriptor(self) -> dict:
        """JSON-stable identity folded into run fingerprints."""


@dataclass(frozen=True, eq=False)
class TracePack:
    """A named, versioned, content-hashed workload bundle.

    Attributes
    ----------
    name:
        Registry/CLI name; not part of the content hash.
    source:
        Trace source (synthetic generator or recorded matrix).
    version:
        Pack version, for evolving a named pack's content over time.
    datacorr:
        Data-correlation parameters bundled with the traces.
    app_mix:
        Optional archetype-mix override applied to the config's
        arrival model (the scenario packs use this).
    """

    name: str
    source: SyntheticTraceSource | RecordedTraceSource
    version: int = 1
    datacorr: DataCorrelationParams = field(
        default_factory=DataCorrelationParams
    )
    app_mix: Mapping[AppType, float] | None = None

    #: Event-core opt-in (unannotated on purpose: a class constant,
    #: not a dataclass field).  All shipped packs pre-realize their
    #: traces per slot, which is exactly what the event driver's
    #: MEASURE events replay, so they all support it; a future
    #: streaming pack whose realization depends on the slot loop's
    #: call cadence would set this False and ``--engine event`` is
    #: rejected for it.
    supports_event_core = True

    @property
    def kind(self) -> str:
        """Source kind: ``"synthetic"`` or ``"recorded"``."""
        return self.source.kind

    @cached_property
    def sha256(self) -> str:
        """Content hash over source, datacorr params and app mix."""
        mix_items: tuple[object, ...] = ("app_mix",)
        if self.app_mix is not None:
            mix_items += tuple(
                (app.name, float(weight))
                for app, weight in sorted(
                    self.app_mix.items(), key=lambda item: item[0].name
                )
            )
        return _hash_items(
            "repro-trace-pack",
            PACK_SCHEMA_VERSION,
            self.version,
            *self.source.content_items(),
            *self.datacorr.content_items(),
            *mix_items,
        ).hexdigest()

    def descriptor(self) -> dict:
        """JSON-stable identity: schema, name, version, kind, sha256."""
        return {
            "schema": PACK_SCHEMA_VERSION,
            "name": self.name,
            "version": self.version,
            "kind": self.kind,
            "sha256": self.sha256,
        }

    def content_descriptor(self) -> dict:
        """The descriptor minus the name -- what run fingerprints hash.

        Names are labels, not content (they don't feed
        :attr:`sha256`), so a renamed pack -- e.g. the same recorded
        CSV under a new file name -- keys the same cached runs.
        """
        descriptor = self.descriptor()
        del descriptor["name"]
        return descriptor

    def configure(self, config):
        """Apply the pack's app-mix override to ``config`` (if any)."""
        if self.app_mix is None:
            return config
        arrival_model = dataclasses.replace(
            config.arrival_model, app_mix=dict(self.app_mix)
        )
        return dataclasses.replace(config, arrival_model=arrival_model)

    def build_traces(self, config):
        """The pack's trace library, checked against the config slotting."""
        library = self.source.build(config)
        steps = getattr(library, "steps_per_slot", config.steps_per_slot)
        if steps != config.steps_per_slot:
            raise ValueError(
                f"pack {self.name!r} serves {steps} steps per slot but "
                f"config {config.name!r} expects {config.steps_per_slot}"
            )
        return library

    def build_volumes(
        self, config, vectorized: bool = True
    ) -> DataCorrelationProcess:
        """The pack's volume process, seeded by the engine's convention."""
        return self.datacorr.build(config.seed + 2, vectorized=vectorized)

    def with_app_mix(
        self, app_mix: Mapping[AppType, float], name: str | None = None
    ) -> "TracePack":
        """A copy carrying an archetype-mix override (new content hash)."""
        return dataclasses.replace(
            self, name=name or self.name, app_mix=dict(app_mix)
        )

    @classmethod
    def from_csv(
        cls,
        path: str | pathlib.Path,
        steps_per_slot: int,
        name: str | None = None,
        version: int = 1,
        extend_days: int = 1,
        extension_sigma: float = 0.05,
        extend_seed: int = 0,
        datacorr: DataCorrelationParams | None = None,
        app_mix: Mapping[AppType, float] | None = None,
    ) -> "TracePack":
        """A recorded pack from a utilization CSV (named after the file).

        This is the paper pipeline's entry point for private recorded
        traces; pass ``extend_days=7`` to apply the one-day-to-one-week
        extension rule at build time.
        """
        path = pathlib.Path(path)
        return cls(
            name=name or path.stem,
            source=RecordedTraceSource(
                utilization=load_utilization_csv(path),
                steps_per_slot=steps_per_slot,
                extend_days=extend_days,
                extension_sigma=extension_sigma,
                extend_seed=extend_seed,
            ),
            version=version,
            datacorr=datacorr or DataCorrelationParams(),
            app_mix=app_mix,
        )


@dataclass(frozen=True, eq=False)
class LibraryWorkload:
    """Adapter wrapping a pre-built trace library as a provider.

    Backs the engine's legacy ``trace_library=`` argument.  It carries
    no content hash (the library is an opaque live object), so it
    cannot key the result store -- use a :class:`TracePack` for that.
    """

    library: object
    datacorr: DataCorrelationParams = field(
        default_factory=DataCorrelationParams
    )

    #: See :attr:`TracePack.supports_event_core`; a wrapped library is
    #: a pre-realized per-slot table too.
    supports_event_core = True

    def configure(self, config):
        """No overrides: the config passes through unchanged."""
        return config

    def build_traces(self, config):
        """The wrapped library, as given."""
        return self.library

    def build_volumes(
        self, config, vectorized: bool = True
    ) -> DataCorrelationProcess:
        """Volume process with the engine's established seed derivation."""
        return self.datacorr.build(config.seed + 2, vectorized=vectorized)

    def descriptor(self) -> dict:
        """Opaque identity -- deliberately not usable as a cache key."""
        return {
            "schema": PACK_SCHEMA_VERSION,
            "name": f"library:{type(self.library).__name__}",
            "version": 0,
            "kind": "library",
            "sha256": None,
        }


# -- registry -----------------------------------------------------------

_REGISTRY: dict[str, TracePack] = {}


def register_pack(pack: TracePack, replace: bool = False) -> TracePack:
    """Add ``pack`` to the process-wide registry (returned unchanged)."""
    if not replace and pack.name in _REGISTRY:
        raise ValueError(f"pack {pack.name!r} is already registered")
    _REGISTRY[pack.name] = pack
    return pack


def get_pack(name: str) -> TracePack:
    """Look a pack up by name; raises ``KeyError`` naming alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pack {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_packs() -> dict[str, TracePack]:
    """Snapshot of the registry, sorted by name."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def default_pack() -> TracePack:
    """The synthetic default pack (the engine's historical workload)."""
    return get_pack(DEFAULT_PACK_NAME)


register_pack(TracePack(name=DEFAULT_PACK_NAME, source=SyntheticTraceSource()))
register_pack(
    TracePack(
        name="synthetic-dense",
        source=SyntheticTraceSource(),
        datacorr=DataCorrelationParams(dense=True),
    )
)

#: Named archetype mixes for the workload scenario studies:
#: scale-out-heavy, HPC-heavy, and the paper-like blend the library
#: defaults to (consumed by :mod:`repro.experiments.scenarios`).
SCENARIO_MIXES: dict[str, dict[AppType, float]] = {
    "scale-out": {AppType.WEB: 0.8, AppType.BATCH: 0.15, AppType.HPC: 0.05},
    "mixed": {AppType.WEB: 0.5, AppType.BATCH: 0.3, AppType.HPC: 0.2},
    "hpc": {AppType.WEB: 0.1, AppType.BATCH: 0.2, AppType.HPC: 0.7},
}

#: The scenario mixes as registered, selectable packs
#: (``--pack scenario-hpc`` etc.): synthetic traces plus the mix as an
#: arrival-model override, each with its own content hash.  Registered
#: here so the registry is complete however it is reached (CLI,
#: ``repro.get_pack`` or this module directly).
SCENARIO_PACKS: dict[str, TracePack] = {
    scenario: register_pack(
        TracePack(
            name=f"scenario-{scenario}",
            source=SyntheticTraceSource(),
            app_mix=mix,
        )
    )
    for scenario, mix in SCENARIO_MIXES.items()
}
