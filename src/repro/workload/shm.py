"""Zero-copy pack fan-out over ``multiprocessing.shared_memory``.

Submitting a recorded-trace pack to the orchestrator's worker pool
normally pickles the full utilization matrix into every task message.
For the paper's recorded day (720 samples/slot x 24 slots x thousands
of VMs) that is hundreds of megabytes re-serialized per run.  This
module ships the matrix across the process boundary exactly once:

* the parent-side :class:`SharedWorkloadPublisher` copies a recorded
  pack's utilization matrix into a ``SharedMemory`` segment and hands
  back a tiny picklable :class:`SharedPackStub`;
* workers call :meth:`SharedPackStub.restore`, which attaches the
  segment read-only and rebuilds an equivalent
  :class:`~repro.workload.packs.TracePack` *without copying* the
  matrix (see the adopt-read-only branch in
  ``RecordedTraceSource.__post_init__``) and without re-hashing it
  (the parent's sha256 is pre-seeded);
* the parent owns the segment lifecycle: ``close()`` unlinks every
  published segment; workers only ever close their attach handles.

The publisher degrades gracefully: synthetic packs (already tiny),
matrices under :data:`MIN_SHARED_BYTES`, and any OS-level shared
memory failure all yield ``None``, telling the caller to fall back to
the ordinary full-pack pickle path.  Restores are cached per process
and per segment, so a sweep of many runs over one pack attaches once.

Bit-identity: the stub rebuilds the pack from the *same bytes* the
parent hashed (``sha256`` equality is asserted structurally by
construction -- the segment holds a byte-exact copy), so run
fingerprints and artifacts are unchanged versus the pickle path.
"""

from __future__ import annotations

import atexit
import dataclasses
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

from repro.workload.packs import RecordedTraceSource, TracePack
from repro.workload.vm import AppType

#: Matrices smaller than this are cheaper to pickle than to publish.
MIN_SHARED_BYTES = 1 << 20


@dataclass(frozen=True)
class SharedArrayRef:
    """Location of one ndarray inside a shared memory segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        """Byte size of the referenced array (shape x itemsize)."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


#: Segment names created by a publisher in *this* process.  The
#: jobs=1 inline path restores stubs in the publishing process itself;
#: its attaches must not cancel the creator's resource registration.
_OWNED_SEGMENTS: set[str] = set()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python < 3.13 unconditionally registers attached segments with the
    resource tracker, which would unlink them when *this* process
    exits even though the publisher still owns them; unregister to
    keep ownership with the parent.  3.13+ exposes ``track=False``.
    """
    if name in _OWNED_SEGMENTS:
        # We are the publisher: reuse one registration, don't touch it.
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        segment = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        return segment


# Worker-side attach caches.  Keyed by segment name so repeated stubs
# for one sweep attach a segment exactly once per process; handles are
# closed (never unlinked -- the parent owns the segments) at exit.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_RESTORED: dict[str, TracePack] = {}
_CLEANUP_REGISTERED = False


def _attached_array(ref: SharedArrayRef) -> np.ndarray:
    """The read-only ndarray view behind ``ref``, attach-once cached."""
    global _CLEANUP_REGISTERED
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    segment = _attach_segment(ref.name)
    array = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    _ATTACHED[ref.name] = (segment, array)
    if not _CLEANUP_REGISTERED:
        atexit.register(_close_attachments)
        _CLEANUP_REGISTERED = True
    return array


def _close_attachments() -> None:
    """Close (not unlink) every attach handle this process holds."""
    _RESTORED.clear()
    for name, (segment, _array) in list(_ATTACHED.items()):
        _ATTACHED.pop(name, None)
        try:
            segment.close()
        except Exception:
            pass


@dataclass(frozen=True)
class SharedPackStub:
    """Everything needed to rebuild a recorded pack from shared memory.

    A few hundred bytes on the wire versus the full matrix; restoring
    yields a pack whose ``content_descriptor()`` (and therefore every
    run fingerprint) matches the original exactly.
    """

    name: str
    version: int
    datacorr: object
    app_mix: Mapping[AppType, float] | None
    sha256: str
    ref: SharedArrayRef
    steps_per_slot: int
    extend_days: int
    extension_sigma: float
    extend_seed: int

    def restore(self) -> TracePack:
        """The pack, rebuilt zero-copy from the shared segment."""
        cached = _RESTORED.get(self.sha256)
        if cached is not None:
            return cached
        matrix = _attached_array(self.ref)
        source = RecordedTraceSource(
            utilization=matrix,
            steps_per_slot=self.steps_per_slot,
            extend_days=self.extend_days,
            extension_sigma=self.extension_sigma,
            extend_seed=self.extend_seed,
        )
        pack = TracePack(
            name=self.name,
            source=source,
            version=self.version,
            datacorr=self.datacorr,
            app_mix=self.app_mix,
        )
        # The segment holds a byte-exact copy of the matrix the parent
        # hashed; seed the cached_property so workers skip re-hashing
        # hundreds of megabytes per process.
        pack.__dict__["sha256"] = self.sha256
        _RESTORED[self.sha256] = pack
        return pack


@dataclass
class SharedWorkloadPublisher:
    """Parent-side registry of shared segments for the current sweep.

    ``publish_pack`` is idempotent per pack content (keyed by sha256).
    The publisher owns every segment it creates; callers must invoke
    :meth:`close` (the orchestrator ties this to its own ``close()``)
    to unlink them, though an ``atexit`` hook covers abrupt exits.
    """

    min_bytes: int = MIN_SHARED_BYTES
    _segments: dict[str, shared_memory.SharedMemory] = field(
        default_factory=dict
    )
    _stubs: dict[str, SharedPackStub] = field(default_factory=dict)
    _closed: bool = False

    def __post_init__(self) -> None:
        atexit.register(self.close)

    def publish_pack(self, pack: object) -> SharedPackStub | None:
        """A stub for ``pack``, or ``None`` when sharing does not pay.

        ``None`` means: fall back to pickling the full pack.  Raised
        OS errors (e.g. an exhausted ``/dev/shm``) are swallowed into
        the same fallback -- sharing is an optimization, never a
        requirement.
        """
        if self._closed or not isinstance(pack, TracePack):
            return None
        if not isinstance(pack.source, RecordedTraceSource):
            return None
        matrix = pack.source.utilization
        if matrix.nbytes < self.min_bytes:
            return None
        stub = self._stubs.get(pack.sha256)
        if stub is not None:
            return stub
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=matrix.nbytes
            )
            staged = np.ndarray(
                matrix.shape, dtype=matrix.dtype, buffer=segment.buf
            )
            staged[:] = matrix
        except OSError:
            return None
        self._segments[pack.sha256] = segment
        _OWNED_SEGMENTS.add(segment.name)
        stub = SharedPackStub(
            name=pack.name,
            version=pack.version,
            datacorr=pack.datacorr,
            app_mix=pack.app_mix,
            sha256=pack.sha256,
            ref=SharedArrayRef(
                name=segment.name,
                shape=tuple(matrix.shape),
                dtype=matrix.dtype.str,
            ),
            steps_per_slot=pack.source.steps_per_slot,
            extend_days=pack.source.extend_days,
            extension_sigma=pack.source.extension_sigma,
            extend_seed=pack.source.extend_seed,
        )
        self._stubs[pack.sha256] = stub
        return stub

    def stats(self) -> dict:
        """Published segment count and total shared bytes."""
        return {
            "segments": len(self._segments),
            "bytes": sum(
                segment.size for segment in self._segments.values()
            ),
        }

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        self._closed = True
        for sha, segment in list(self._segments.items()):
            self._segments.pop(sha, None)
            _OWNED_SEGMENTS.discard(segment.name)
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        self._stubs.clear()


def strip_pack(request, stub: SharedPackStub):
    """``request`` with its pack removed, for shipping next to ``stub``.

    The worker re-attaches the pack via :meth:`SharedPackStub.restore`;
    fingerprints are always computed parent-side from the original
    request, so the stripped copy never needs one.
    """
    return dataclasses.replace(request, pack=None)
