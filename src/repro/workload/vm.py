"""Virtual machine model.

A :class:`VirtualMachine` is the unit of placement.  It carries the
static attributes the paper's controllers consume:

* a migration image size in GB (2/4/8 GB with probabilities 60/30/10 %,
  Section V-A), which determines how long an inter-DC migration takes;
* a peak CPU demand expressed in *core units* of the reference server;
* an application archetype that selects the diurnal utilization profile
  used by :class:`repro.workload.traces.TraceLibrary`;
* a *service* identifier grouping VMs that exchange data (the data
  correlation process generates most of its traffic inside services).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

#: Migration image sizes in GB with their sampling probabilities
#: (Section V-A: "the size of the VMs are in the range of 2, 4, and 8 GB
#: according to the distribution of 60%, 30%, and 10%").
IMAGE_SIZES_GB = (2.0, 4.0, 8.0)
IMAGE_SIZE_PROBS = (0.60, 0.30, 0.10)


class AppType(enum.Enum):
    """Application archetypes hosted by the virtualized DCs.

    The paper motivates the correlation-aware design with the contrast
    between scale-out services (web search, MapReduce) and HPC jobs
    (Section I).  Each archetype maps to a diurnal CPU profile in
    :mod:`repro.workload.traces`.
    """

    WEB = "web"
    BATCH = "batch"
    HPC = "hpc"


#: Sampling weights for archetypes in a generic cloud mix.
APP_TYPE_PROBS = {AppType.WEB: 0.5, AppType.BATCH: 0.3, AppType.HPC: 0.2}


@dataclass(frozen=True)
class VirtualMachine:
    """A virtual machine known to the global controller.

    Attributes
    ----------
    vm_id:
        Unique, stable integer identifier.
    app_type:
        Workload archetype driving the CPU trace shape.
    cores:
        Peak CPU demand in core units of the reference server (a trace
        value of 1.0 means the VM uses ``cores`` full cores).
    image_gb:
        Migration image size in GB (drawn from 2/4/8 @ 60/30/10 %).
    arrival_slot:
        First slot in which the VM exists.
    departure_slot:
        First slot in which the VM no longer exists (exclusive bound).
    service_id:
        Communication group; VMs of the same service exchange the bulk
        of the data volumes.
    phase_hours:
        Per-VM shift of the diurnal profile, in hours.  VMs of the same
        service share a phase so their CPU peaks coincide, which is what
        makes the repulsion force meaningful.
    seed:
        Per-VM randomness root for deterministic trace generation.
    """

    vm_id: int
    app_type: AppType
    cores: float
    image_gb: float
    arrival_slot: int
    departure_slot: int
    service_id: int
    phase_hours: float = 0.0
    seed: int = field(default=0)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"VM {self.vm_id}: cores must be positive")
        if self.departure_slot <= self.arrival_slot:
            raise ValueError(
                f"VM {self.vm_id}: departure_slot ({self.departure_slot}) must "
                f"be after arrival_slot ({self.arrival_slot})"
            )
        if self.image_gb <= 0:
            raise ValueError(f"VM {self.vm_id}: image_gb must be positive")

    @property
    def lifetime_slots(self) -> int:
        """Number of slots the VM lives for."""
        return self.departure_slot - self.arrival_slot

    def alive_at(self, slot: int) -> bool:
        """Whether the VM exists during ``slot``."""
        return self.arrival_slot <= slot < self.departure_slot


def sample_image_size_gb(rng: np.random.Generator) -> float:
    """Draw a migration image size from the paper's 2/4/8 GB distribution."""
    return float(rng.choice(IMAGE_SIZES_GB, p=IMAGE_SIZE_PROBS))


def sample_app_type(
    rng: np.random.Generator,
    mix: dict[AppType, float] | None = None,
) -> AppType:
    """Draw an application archetype.

    ``mix`` overrides the default cloud mix; weights are normalized and
    must be non-negative with a positive sum.
    """
    mix = mix or APP_TYPE_PROBS
    types = list(mix)
    weights = np.array([mix[t] for t in types], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative with a positive sum")
    probs = weights / weights.sum()
    return types[int(rng.choice(len(types), p=probs))]
