"""Content-keyed workload materializations shared across runs.

The paper's deliverables are sweeps: many policies (and engine-option
variants) evaluated over the *same* workload realization.  Every
:class:`~repro.sim.engine.SimulationEngine` historically rebuilt that
realization from scratch -- the VM population, the trace library, the
data-correlation process, and (the dominant cost) every realized
per-slot demand matrix and volume matrix.  Profiling a baseline-policy
run shows ~90% of its wall time is exactly this workload generation,
recomputed identically for every policy in a comparison.

This module factors the whole workload side of a run into one shared,
reusable unit:

* :func:`materialization_key` -- a deterministic SHA-256 over the
  *workload-relevant* request state: the pack's content hash plus the
  configured experiment's seed, horizon, slot resolution and arrival
  model, and the ``vectorized`` flag (the volume process's
  implementation choice).  Two runs share a key iff they realize
  bit-identical workloads.
* :class:`WorkloadMaterialization` -- population + trace library +
  volume process, plus a :class:`SlotDataCache` of *realized* per-slot
  demand and volume matrices (the arrays every run of the key would
  otherwise regenerate).  Served arrays are marked read-only: sharing
  is only sound because policies never write observations, and the
  flag turns any future violation into an immediate ``ValueError``
  instead of a silent cross-run corruption.
* :class:`MaterializationCache` -- a bounded per-process LRU of
  materializations, installed in orchestrator worker processes via the
  pool initializer (:func:`configure_process_cache`) and consulted by
  :func:`~repro.experiments.orchestrator.Orchestrator` submissions.

Correctness contract
--------------------

The cache is an *execution detail*: it never joins a
:class:`~repro.experiments.orchestrator.RunRequest` fingerprint, and a
cached run must be byte-identical to a from-scratch run.  That holds
because every shared component is a deterministic memo of the same
seeded draws the engine would perform itself: demand rows come from
the same ``slot_demand`` calls in the same order, volume matrices from
the same :class:`~repro.workload.datacorr.DataCorrelationProcess`
(whose per-pair RNG streams depend only on vm ids), and the population
from the same ``VMPopulation.generate``.
``tests/experiments/test_workload_cache.py`` asserts the equivalence
across pack kinds and execution paths.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import threading
from typing import Callable

import numpy as np

from repro.workload.arrivals import VMPopulation
from repro.workload.packs import TracePack, default_pack, _hash_items

__all__ = [
    "DEFAULT_CACHE_MATERIALIZATIONS",
    "DEFAULT_SLOT_BUDGET_BYTES",
    "MaterializationCache",
    "SlotDataCache",
    "WorkloadMaterialization",
    "build_materialization",
    "configure_process_cache",
    "materialization_key",
    "process_cache",
]

#: Default number of materializations kept per process.  A sweep
#: touches few distinct workloads at a time (policies x options share
#: one), so a small LRU covers the working set while bounding memory.
DEFAULT_CACHE_MATERIALIZATIONS = 4

#: Default byte budget for one materialization's realized slot data.
#: Covers a full small-scale week (~85 MB of demand + volume
#: matrices); at paper scale the budget caps admission instead of
#: ballooning (see :class:`SlotDataCache`).
DEFAULT_SLOT_BUDGET_BYTES = 192 << 20


def _canonical_workload(value):
    """JSON-stable plain data for the workload-relevant config state.

    A local (dependency-free) subset of the orchestrator's
    ``canonical``: dataclasses, enums, dicts and scalars -- everything
    an :class:`~repro.workload.arrivals.ArrivalModel` can contain.
    Kept here because :mod:`repro.experiments.orchestrator` imports the
    engine (and hence this module); importing it back would cycle.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__qualname__, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__qualname__,
            **{
                f.name: _canonical_workload(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {
            str(_canonical_workload(key)): _canonical_workload(val)
            for key, val in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_canonical_workload(item) for item in value]
    raise TypeError(
        f"cannot canonicalize workload field {type(value).__name__}: {value!r}"
    )


def materialization_key(
    config, pack: TracePack | None, vectorized: bool = True
) -> str:
    """SHA-256 key of the workload realization a request implies.

    ``config`` must be the experiment configuration *as the run
    resolves it* (seed override applied); the pack's ``configure``
    overrides (e.g. a scenario mix rewriting the arrival model) are
    applied here, so two packs that configure the same effective
    arrival model over the same traces still share a key only when
    their content hashes agree.

    The key hashes exactly what determines the realized workload:

    * the pack's content identity (schema, version, sha256 -- never
      the name), ``None`` resolving to the registered default pack;
    * ``config.seed`` (roots population, traces and volumes),
      ``horizon_slots`` (population extent), ``steps_per_slot``
      (trace resolution) and the configured arrival model;
    * the ``vectorized`` flag, which selects the volume process's
      implementation (bit-identical, but a distinct live object).

    Fleet shape, tariffs, PUE, QoS and policy state deliberately stay
    out: they change the run, not its workload.
    """
    if pack is None:
        pack = default_pack()
    configured = pack.configure(config)
    arrival = json.dumps(
        _canonical_workload(configured.arrival_model), sort_keys=True
    )
    return _hash_items(
        "repro-workload-materialization",
        pack.content_descriptor()["schema"],
        pack.version,
        pack.sha256,
        int(configured.seed),
        int(configured.horizon_slots),
        int(configured.steps_per_slot),
        arrival,
        bool(vectorized),
    ).hexdigest()


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only (the cross-run sharing tripwire)."""
    array.flags.writeable = False
    return array


class SlotDataCache:
    """Realized per-slot demand and volume matrices for one workload.

    Keys are ``(slot, vm-id tuple)``: the engine's demand and volume
    calls are exact functions of the slot and the ordered alive set,
    so whole-matrix memoization is sound (the volume process's
    per-slot jitter depends on matrix *position*, not VM identity --
    only exact-population hits may be served).

    Demand rows are additionally memoized per ``(vm_id, slot)`` as
    views into their matrices, preserving the engine's original
    incremental behavior: a cold run assembling slot ``s+1``'s matrix
    recomputes only the newly-arrived VMs' rows.

    Memory policy: admission-capped rather than evicted.  Runs replay
    slots in ascending order, so LRU eviction under a scan working set
    larger than the budget would evict precisely the entries the next
    run is about to need (classic scan thrash, zero reuse).  Instead
    the first ``budget_bytes`` of entries stay resident -- every later
    run gets a deterministic warm prefix -- and once the budget is
    full both lookup methods *decline* (return ``None``) so the engine
    falls back to its original per-run caches, preserving the
    pre-cache cold-run behavior exactly.
    """

    def __init__(self, budget_bytes: int = DEFAULT_SLOT_BUDGET_BYTES) -> None:
        self.budget_bytes = int(budget_bytes)
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.declined = 0
        self._demand: dict[tuple, np.ndarray] = {}
        self._rows: dict[tuple[int, int], np.ndarray] = {}
        self._volumes: dict[tuple, object] = {}
        self._lock = threading.RLock()

    def demand_matrix(self, traces, vms, slot: int) -> np.ndarray | None:
        """The ``(len(vms), steps)`` demand matrix, memoized.

        Row ``i`` is exactly ``traces.slot_demand(vms[i], slot)`` --
        assembled through the provider's batched ``slot_demand_many``
        fast path when all rows are new, from per-row memo views (the
        engine's original incremental behavior) otherwise.  Returns
        ``None`` when the byte budget cannot admit the matrix.
        """
        key = (slot, tuple(vm.vm_id for vm in vms))
        steps = traces.steps_per_slot
        with self._lock:
            matrix = self._demand.get(key)
            if matrix is not None:
                self.hits += 1
                return matrix
            estimate = len(vms) * steps * 8
            if self.bytes + estimate > self.budget_bytes:
                self.declined += 1
                return None
            self.misses += 1
            cached_rows = [self._rows.get((vm.vm_id, slot)) for vm in vms]
            missing = [
                index for index, row in enumerate(cached_rows)
                if row is None
            ]
            if len(missing) == len(vms):
                matrix = _demand_many(traces, vms, slot)
            else:
                matrix = np.empty((len(vms), steps))
                for index, row in enumerate(cached_rows):
                    if row is not None:
                        matrix[index] = row
                if missing:
                    fresh = _demand_many(
                        traces, [vms[index] for index in missing], slot
                    )
                    for position, index in enumerate(missing):
                        matrix[index] = fresh[position]
            _freeze(matrix)
            self.bytes += matrix.nbytes
            self._demand[key] = matrix
            for index, vm in enumerate(vms):
                self._rows.setdefault((vm.vm_id, slot), matrix[index])
            return matrix

    def volume_matrix(self, process, vms, slot: int):
        """The slot's :class:`~repro.workload.datacorr.VolumeMatrix`,
        memoized; ``None`` when the byte budget cannot admit it."""
        key = (slot, tuple(vm.vm_id for vm in vms))
        with self._lock:
            cached = self._volumes.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            estimate = len(vms) * len(vms) * 8
            if self.bytes + estimate > self.budget_bytes:
                self.declined += 1
                return None
            self.misses += 1
            matrix = process.volumes(list(vms), slot)
            _freeze(matrix.volumes)
            self.bytes += matrix.volumes.nbytes
            self._volumes[key] = matrix
            return matrix

    def stats(self) -> dict:
        """Counter snapshot: hit/miss/declined plus resident entries."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "declined": self.declined,
                "bytes": self.bytes,
                "demand_entries": len(self._demand),
                "volume_entries": len(self._volumes),
            }


def _demand_many(traces, vms, slot: int) -> np.ndarray:
    """Batched demand-matrix assembly with a per-row fallback.

    Uses the provider's ``slot_demand_many`` fast path when it has
    one; a provider without it (custom library adapters) falls back to
    the reference per-VM stack -- both produce identical bytes.
    """
    many = getattr(traces, "slot_demand_many", None)
    if many is not None:
        return many(vms, slot)
    return np.stack([traces.slot_demand(vm, slot) for vm in vms])


class WorkloadMaterialization:
    """One workload realization, frozen for sharing across engines.

    Bundles the population, trace library and volume process a
    :class:`~repro.sim.engine.SimulationEngine` would build for the
    keyed ``(config, pack, vectorized)`` triple, plus the
    :class:`SlotDataCache` of realized per-slot arrays.  All mutation
    funnels through :meth:`demand` and :meth:`volume_matrix`, which
    serialize under one lock -- engines sharing a materialization from
    several threads (a ``jobs=1`` daemon serving concurrent clients)
    interleave safely and deterministically.

    Attributes
    ----------
    key:
        The :func:`materialization_key` this realization answers to.
    base_config:
        The configuration *before* the pack's ``configure`` overrides
        (what an engine is constructed with; used to verify a
        materialization is being applied to the run it was built for).
    config:
        The configured experiment (pack overrides applied) every
        consumer must simulate under.
    """

    def __init__(
        self,
        key: str,
        base_config,
        config,
        pack: TracePack,
        population: VMPopulation,
        traces,
        volumes,
        vectorized: bool = True,
        slot_budget_bytes: int = DEFAULT_SLOT_BUDGET_BYTES,
    ) -> None:
        self.key = key
        self.base_config = base_config
        self.config = config
        self.pack = pack
        self.population = population
        self.traces = traces
        self.volumes = volumes
        self.vectorized = vectorized
        self.slots = SlotDataCache(budget_bytes=slot_budget_bytes)

    def demand(self, vms, slot: int) -> np.ndarray | None:
        """Shared, read-only demand matrix for ``(vms, slot)``.

        ``None`` when the slot budget declines -- the engine then
        falls back to its own per-run demand cache.
        """
        if not vms:
            return np.zeros((0, self.config.steps_per_slot))
        return self.slots.demand_matrix(self.traces, vms, slot)

    def volume_matrix(self, vms, slot: int):
        """Shared, read-only volume matrix for ``(vms, slot)``, or
        ``None`` when the slot budget declines."""
        return self.slots.volume_matrix(self.volumes, vms, slot)

    def approx_bytes(self) -> int:
        """Rough resident size: realized slot data + generator caches."""
        total = self.slots.bytes
        approx = getattr(self.volumes, "approx_cache_bytes", None)
        if approx is not None:
            total += approx()
        return total

    def stats(self) -> dict:
        """The slot cache's counters with ``bytes`` widened to
        :meth:`approx_bytes` (realized arrays + generator caches)."""
        stats = self.slots.stats()
        stats["bytes"] = self.approx_bytes()
        return stats


def build_materialization(
    config,
    pack: TracePack | None,
    vectorized: bool = True,
    slot_budget_bytes: int = DEFAULT_SLOT_BUDGET_BYTES,
    key: str | None = None,
) -> WorkloadMaterialization:
    """Materialize the workload for ``(config, pack, vectorized)``.

    Builds exactly what :class:`~repro.sim.engine.SimulationEngine`
    builds for itself -- same construction order, same seed
    derivations -- so an engine running from this materialization is
    bit-identical to one building its own.
    """
    if pack is None:
        pack = default_pack()
    if key is None:
        key = materialization_key(config, pack, vectorized)
    configured = pack.configure(config)
    population = VMPopulation.generate(
        configured.arrival_model,
        configured.horizon_slots,
        seed=configured.seed,
    )
    traces = pack.build_traces(configured)
    volumes = pack.build_volumes(configured, vectorized=vectorized)
    return WorkloadMaterialization(
        key=key,
        base_config=config,
        config=configured,
        pack=pack,
        population=population,
        traces=traces,
        volumes=volumes,
        vectorized=vectorized,
        slot_budget_bytes=slot_budget_bytes,
    )


class MaterializationCache:
    """Bounded per-process LRU of :class:`WorkloadMaterialization`.

    ``get`` moves hits to the back and evicts from the front when the
    entry cap is exceeded -- sweeps alternating between a few
    workloads keep them all warm; a stream of distinct workloads
    cannot grow the process beyond ``size`` materializations.
    """

    def __init__(
        self,
        size: int = DEFAULT_CACHE_MATERIALIZATIONS,
        slot_budget_bytes: int = DEFAULT_SLOT_BUDGET_BYTES,
    ) -> None:
        self.size = max(1, int(size))
        self.slot_budget_bytes = int(slot_budget_bytes)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, WorkloadMaterialization] = {}
        self._lock = threading.RLock()

    def get(
        self,
        key: str,
        build: Callable[[], WorkloadMaterialization],
    ) -> WorkloadMaterialization:
        """The cached materialization for ``key``, building on miss."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.hits += 1
                self._entries[key] = entry  # refresh LRU position
                return entry
            self.misses += 1
        # Build outside the lock: materialization is seconds of work
        # and concurrent callers for *different* keys must not
        # serialize.  A duplicate concurrent build of the same key is
        # benign (deterministic; last insert wins).
        entry = build()
        if entry.key != key:
            raise ValueError(
                f"materialization key mismatch: built {entry.key[:12]} "
                f"for requested {key[:12]}"
            )
        with self._lock:
            self._entries[key] = entry
            while len(self._entries) > self.size:
                self._entries.pop(next(iter(self._entries)))
        return entry

    def materialize(
        self, config, pack: TracePack | None, vectorized: bool = True
    ) -> WorkloadMaterialization:
        """Key + get + build in one call (the engine-facing entry)."""
        key = materialization_key(config, pack, vectorized)
        return self.get(
            key,
            lambda: build_materialization(
                config,
                pack,
                vectorized,
                slot_budget_bytes=self.slot_budget_bytes,
                key=key,
            ),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Resident materialization keys, oldest (next to evict) first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """Aggregate counters over the cache and its materializations."""
        with self._lock:
            entries = list(self._entries.values())
            stats = {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(entries),
            }
        slot_hits = slot_misses = total_bytes = 0
        for entry in entries:
            slot = entry.stats()
            slot_hits += slot["hits"]
            slot_misses += slot["misses"]
            total_bytes += slot["bytes"]
        stats["slot_hits"] = slot_hits
        stats["slot_misses"] = slot_misses
        stats["bytes"] = total_bytes
        return stats


# -- the per-process cache ----------------------------------------------
#
# Worker processes get theirs installed by the orchestrator pool's
# initializer (configure_process_cache); the parent process (serial
# orchestrators, the jobs=1 daemon) lazily creates one on first use.

_PROCESS_CACHE: MaterializationCache | None = None
_PROCESS_CACHE_LOCK = threading.Lock()


def configure_process_cache(
    size: int = DEFAULT_CACHE_MATERIALIZATIONS,
    slot_budget_bytes: int = DEFAULT_SLOT_BUDGET_BYTES,
) -> MaterializationCache:
    """(Re)install this process's materialization cache.

    The orchestrator's worker initializer; also the test hook for
    shrinking caps.  Replaces any existing cache (dropping its
    entries), so counters restart from zero.
    """
    global _PROCESS_CACHE
    with _PROCESS_CACHE_LOCK:
        _PROCESS_CACHE = MaterializationCache(
            size=size, slot_budget_bytes=slot_budget_bytes
        )
        return _PROCESS_CACHE


def process_cache() -> MaterializationCache:
    """This process's materialization cache (created on first use)."""
    global _PROCESS_CACHE
    with _PROCESS_CACHE_LOCK:
        if _PROCESS_CACHE is None:
            _PROCESS_CACHE = MaterializationCache()
        return _PROCESS_CACHE
