"""Recorded (external) utilization traces.

The paper's evaluation uses a *real* DC's utilization sampled every 5 s
for one day, extended to a week.  That trace is private, so the library
defaults to :class:`~repro.workload.traces.TraceLibrary`'s synthetic
equivalent -- but users holding real traces can reproduce the paper's
exact pipeline with this module:

* :class:`RecordedTraceLibrary` serves per-(vm, slot) demand from a
  recorded utilization matrix, with the same interface the simulation
  engine consumes (``slot_demand`` / ``demand_matrix`` / ``slot_mean``);
* :meth:`RecordedTraceLibrary.extend_days` applies the paper's
  one-day-to-one-week rule: replay the recorded day with added
  same-mean statistical variance;
* :func:`load_utilization_csv` reads a plain CSV (one row per VM, one
  column per sample, values in [0, 1]).

VM rows are matched by ``vm_id`` modulo the number of recorded rows, so
any population size can run against any recording.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.seeding import rng_for
from repro.workload.vm import VirtualMachine


def load_utilization_csv(path: str | pathlib.Path) -> np.ndarray:
    """Read a utilization matrix: one VM per row, one sample per column.

    Blank lines and ``#``-comment lines are skipped.  Values must parse
    as floats in [0, 1] -- a bad cell is reported with its file, line
    and column -- and rows must have equal length.
    """
    path = pathlib.Path(path)
    rows: list[list[float]] = []
    with path.open(newline="") as handle:
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row or all(not cell.strip() for cell in row):
                continue
            if row[0].lstrip().startswith("#"):
                continue
            values: list[float] = []
            for column, cell in enumerate(row, start=1):
                try:
                    value = float(cell)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}:{column}: "
                        f"not a number: {cell.strip()!r}"
                    ) from None
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"{path}:{line_number}:{column}: "
                        f"utilization {value!r} outside [0, 1]"
                    )
                values.append(value)
            rows.append(values)
    if not rows:
        raise ValueError(f"{path}: no utilization rows")
    lengths = {len(row) for row in rows}
    if len(lengths) != 1:
        raise ValueError(f"{path}: ragged rows (lengths {sorted(lengths)})")
    return np.asarray(rows, dtype=float)


class RecordedTraceLibrary:
    """Engine-compatible trace provider backed by a recorded matrix.

    Parameters
    ----------
    utilization:
        Array ``(n_recorded_vms, total_steps)`` with values in [0, 1].
    steps_per_slot:
        Slot resolution; ``total_steps`` must be a multiple.
    """

    def __init__(self, utilization: np.ndarray, steps_per_slot: int) -> None:
        utilization = np.asarray(utilization, dtype=float)
        if utilization.ndim != 2 or utilization.size == 0:
            raise ValueError("utilization must be a non-empty 2-D array")
        if steps_per_slot < 1:
            raise ValueError("steps_per_slot must be >= 1")
        if utilization.shape[1] % steps_per_slot != 0:
            raise ValueError(
                "total steps must be a multiple of steps_per_slot"
            )
        if utilization.min() < 0.0 or utilization.max() > 1.0:
            raise ValueError("utilization values must be in [0, 1]")
        self.utilization = utilization
        self.steps_per_slot = steps_per_slot

    @classmethod
    def from_csv(
        cls, path: str | pathlib.Path, steps_per_slot: int
    ) -> "RecordedTraceLibrary":
        """Build from a CSV file (see :func:`load_utilization_csv`)."""
        return cls(load_utilization_csv(path), steps_per_slot)

    @property
    def recorded_slots(self) -> int:
        """Number of whole slots in the recording."""
        return self.utilization.shape[1] // self.steps_per_slot

    @property
    def recorded_vms(self) -> int:
        """Number of recorded VM rows."""
        return self.utilization.shape[0]

    def _row_of(self, vm: VirtualMachine) -> int:
        return vm.vm_id % self.recorded_vms

    def _window(self, slot: int) -> slice:
        wrapped = slot % self.recorded_slots
        start = wrapped * self.steps_per_slot
        return slice(start, start + self.steps_per_slot)

    def slot_trace(self, vm: VirtualMachine, slot: int) -> np.ndarray:
        """Utilization fractions of ``vm`` during ``slot`` (wraps)."""
        return self.utilization[self._row_of(vm), self._window(slot)].copy()

    def slot_mean(self, vm: VirtualMachine, slot: int) -> float:
        """Mean utilization of ``vm`` during ``slot``."""
        return float(self.slot_trace(vm, slot).mean())

    def slot_demand(self, vm: VirtualMachine, slot: int) -> np.ndarray:
        """CPU demand in core units during ``slot``."""
        return self.slot_trace(vm, slot) * vm.cores

    def demand_matrix(
        self, vms: list[VirtualMachine], slot: int
    ) -> np.ndarray:
        """Stacked demand traces aligned with ``vms``."""
        if not vms:
            return np.zeros((0, self.steps_per_slot))
        return np.stack([self.slot_demand(vm, slot) for vm in vms])

    def slot_demand_many(
        self, vms: list[VirtualMachine], slot: int
    ) -> np.ndarray:
        """Batched :meth:`slot_demand`: one gather instead of n copies.

        Bit-identical to stacking the per-VM rows -- the multiply is
        elementwise, so broadcasting ``cores`` changes nothing -- while
        replacing n row copy/multiply round-trips with a single fancy
        index and one broadcast product.
        """
        if not vms:
            return np.zeros((0, self.steps_per_slot))
        rows = np.fromiter(
            (vm.vm_id % self.recorded_vms for vm in vms),
            dtype=np.intp,
            count=len(vms),
        )
        cores = np.array([vm.cores for vm in vms], dtype=float)
        return self.utilization[rows, self._window(slot)] * cores[:, None]

    def extend_days(
        self, days: int, extension_sigma: float = 0.05, seed: int = 0
    ) -> "RecordedTraceLibrary":
        """The paper's week-extension rule applied to a recording.

        Day 0 is the recording itself; each further day replays it
        "adding statistical variance with the same mean" -- zero-mean
        Gaussian noise of ``extension_sigma``, clipped to [0, 1].
        """
        if days < 1:
            raise ValueError("days must be >= 1")
        blocks = [self.utilization]
        for day in range(1, days):
            rng = rng_for(seed, "extend", day)
            noisy = self.utilization + rng.normal(
                0.0, extension_sigma, self.utilization.shape
            )
            blocks.append(np.clip(noisy, 0.0, 1.0))
        return RecordedTraceLibrary(
            np.concatenate(blocks, axis=1), self.steps_per_slot
        )
