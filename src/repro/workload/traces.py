"""Synthetic CPU utilization traces.

The paper samples "the VMs' utilization of a real DC every 5 seconds for
one day" and extends it "to 7 days by adding statistical variance with
the same mean as the original traces" (Section V-A).  The real trace is
not public, so this module synthesizes an equivalent library:

* each :class:`~repro.workload.vm.AppType` has a diurnal *profile* (mean
  utilization as a function of local hour) and a noise model;
* day 0 of each VM is the archetype profile plus AR(1) noise;
* days 1..6 replay day 0's hourly means and add fresh variance with the
  same mean -- exactly the extension step the paper applies to its
  measured day;
* traces are generated *per (vm, slot)* from a deterministic seed, so
  the library needs O(steps_per_slot) memory regardless of horizon.

Trace values are utilization fractions in [0, 1]; multiply by
``vm.cores`` to obtain the demand in core units (see
:meth:`TraceLibrary.slot_demand`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter, lfiltic

from repro.seeding import rng_for

from repro.workload.vm import AppType, VirtualMachine

#: Number of slots (hours) per day.
SLOTS_PER_DAY = 24


@dataclass(frozen=True)
class ApplicationProfile:
    """Diurnal shape and noise parameters for one archetype.

    Attributes
    ----------
    base:
        Utilization floor (fraction of peak).
    amplitude:
        Peak-to-floor swing of the diurnal wave.
    peak_hour:
        Local hour of maximum utilization.
    noise_sigma:
        Standard deviation of the AR(1) noise process.
    noise_rho:
        AR(1) coefficient; low values give the fast-changing loads of
        scale-out applications, high values give the slow drift of HPC.
    """

    base: float
    amplitude: float
    peak_hour: float
    noise_sigma: float
    noise_rho: float


#: Archetype profiles.  Scale-out (WEB) peaks in the afternoon with
#: fast-changing noise; BATCH (MapReduce-style) peaks overnight; HPC runs
#: hot and flat.  Parameters are chosen so same-type VMs have strongly
#: coincident peaks (high repulsion) while different types interleave.
PROFILES: dict[AppType, ApplicationProfile] = {
    AppType.WEB: ApplicationProfile(
        base=0.15, amplitude=0.55, peak_hour=15.0, noise_sigma=0.10, noise_rho=0.55
    ),
    AppType.BATCH: ApplicationProfile(
        base=0.20, amplitude=0.45, peak_hour=2.0, noise_sigma=0.07, noise_rho=0.85
    ),
    AppType.HPC: ApplicationProfile(
        base=0.60, amplitude=0.20, peak_hour=9.0, noise_sigma=0.03, noise_rho=0.95
    ),
}


def diurnal_mean(profile: ApplicationProfile, hour: np.ndarray | float) -> np.ndarray:
    """Mean utilization of ``profile`` at local ``hour`` (0-24, wraps).

    The shape is a raised cosine centered on ``peak_hour`` -- smooth,
    periodic and strictly inside (0, 1) for the profiles above.
    """
    phase = 2.0 * np.pi * (np.asarray(hour, dtype=float) - profile.peak_hour) / 24.0
    return profile.base + profile.amplitude * 0.5 * (1.0 + np.cos(phase))


class TraceLibrary:
    """Deterministic per-(vm, slot) utilization trace generator.

    Parameters
    ----------
    steps_per_slot:
        Samples per one-hour slot.  The paper's 5 s sampling gives 720;
        scaled experiments use 60 (one-minute sampling).
    extension_sigma:
        Extra same-mean variance injected on days 1..6, reproducing the
        paper's one-day-to-one-week extension.
    seed:
        Library-wide randomness root, mixed with each VM's own seed.
    """

    def __init__(
        self,
        steps_per_slot: int = 720,
        extension_sigma: float = 0.05,
        seed: int = 0,
    ) -> None:
        if steps_per_slot < 1:
            raise ValueError("steps_per_slot must be >= 1")
        self.steps_per_slot = steps_per_slot
        self.extension_sigma = extension_sigma
        self.seed = seed

    def _rng(self, vm: VirtualMachine, slot: int) -> np.random.Generator:
        """RNG for a (vm, slot) cell, stable across calls."""
        return rng_for(self.seed, vm.seed, vm.vm_id, slot)

    def _day_zero_rng(self, vm: VirtualMachine, hour: int) -> np.random.Generator:
        """RNG used by every day for day-0's hour-level realization."""
        return rng_for(self.seed, vm.seed, vm.vm_id, "day0", hour)

    def _hour_of_day(self, vm: VirtualMachine, slot: int) -> float:
        return (slot + vm.phase_hours) % SLOTS_PER_DAY

    def slot_mean(self, vm: VirtualMachine, slot: int) -> float:
        """Mean utilization (fraction) of ``vm`` during ``slot``.

        Day 0 realizes the archetype mean plus a per-hour offset; later
        days replay day 0's value (same mean), matching the extension
        rule.  Used by forecasts and by tests as the trace ground truth.
        """
        profile = PROFILES[vm.app_type]
        hour = self._hour_of_day(vm, slot)
        base = float(diurnal_mean(profile, hour))
        day0 = self._day_zero_rng(vm, int(hour))
        offset = float(day0.normal(0.0, profile.noise_sigma * 0.5))
        return float(np.clip(base + offset, 0.02, 0.98))

    def slot_trace(self, vm: VirtualMachine, slot: int) -> np.ndarray:
        """Utilization fractions for ``vm`` over ``slot``.

        Returns an array of shape ``(steps_per_slot,)`` with values in
        [0, 1].  Days after the first add fresh same-mean variance
        (``extension_sigma``), the paper's week-extension rule.
        """
        profile = PROFILES[vm.app_type]
        mean = self.slot_mean(vm, slot)
        rng = self._rng(vm, slot)

        sigma = profile.noise_sigma
        if slot >= SLOTS_PER_DAY:
            sigma = float(np.hypot(sigma, self.extension_sigma))

        # AR(1) noise around the hour mean; stationary marginal sigma.
        # y[n] = rho * y[n-1] + eps[n], vectorized as an IIR filter.
        rho = profile.noise_rho
        innovations = rng.normal(0.0, sigma * np.sqrt(1.0 - rho**2), self.steps_per_slot)
        level = rng.normal(0.0, sigma)
        zi = lfiltic([1.0], [1.0, -rho], [level])
        noise, _ = lfilter([1.0], [1.0, -rho], innovations, zi=zi)

        return np.clip(mean + noise, 0.0, 1.0)

    def slot_demand(self, vm: VirtualMachine, slot: int) -> np.ndarray:
        """CPU demand in core units for ``vm`` over ``slot``."""
        return self.slot_trace(vm, slot) * vm.cores

    def demand_matrix(
        self, vms: list[VirtualMachine], slot: int
    ) -> np.ndarray:
        """Stacked demand traces: shape ``(len(vms), steps_per_slot)``.

        Row order matches ``vms``.  This is the array the correlation
        metrics and the power model consume.
        """
        if not vms:
            return np.zeros((0, self.steps_per_slot))
        return np.stack([self.slot_demand(vm, slot) for vm in vms])

    def slot_demand_many(
        self, vms: list[VirtualMachine], slot: int
    ) -> np.ndarray:
        """Batched :meth:`slot_demand` filling one matrix in place.

        Synthetic traces are RNG-per-(vm, slot), so the rows themselves
        cannot be vectorized across VMs without changing the streams;
        this fast path only removes the intermediate row list and the
        ``np.stack`` copy.  Rows are bit-identical to the loop path.
        """
        matrix = np.empty((len(vms), self.steps_per_slot))
        for index, vm in enumerate(vms):
            matrix[index] = self.slot_demand(vm, slot)
        return matrix
