"""Plain-text plotting helpers (no matplotlib dependency).

Used by the CLI and the examples to render the paper's figures as
terminal output: horizontal bars (Figs. 1, 4), time series (Fig. 2)
and histograms (Fig. 3).
"""

from __future__ import annotations

import numpy as np


def bar_chart(
    values: dict[str, float],
    width: int = 40,
    fmt: str = "{:.3f}",
    fill: str = "#",
) -> str:
    """Horizontal bar chart of labeled values (scaled to the max)."""
    if not values:
        return "(no data)"
    top = max(abs(value) for value in values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = fill * int(round(width * abs(value) / top))
        lines.append(f"{label:<{label_width}} {fmt.format(value):>10} |{bar}")
    return "\n".join(lines)


def sparkline(series: np.ndarray, width: int = 72) -> str:
    """One-line sparkline of a series (down-sampled to ``width``)."""
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        return "(no data)"
    if series.size > width:
        edges = np.linspace(0, series.size, width + 1).astype(int)
        series = np.array(
            [series[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    glyphs = " .:-=+*#%@"
    low, high = float(series.min()), float(series.max())
    span = (high - low) or 1.0
    return "".join(
        glyphs[min(int((value - low) / span * (len(glyphs) - 1)), len(glyphs) - 1)]
        for value in series
    )


def histogram(
    samples: np.ndarray,
    bins: int = 30,
    height: int = 8,
    upper: float | None = None,
) -> str:
    """Vertical ASCII histogram of samples (density-normalized)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return "(no data)"
    hi = upper if upper else float(samples.max()) or 1.0
    density, _ = np.histogram(samples, bins=bins, range=(0.0, hi), density=True)
    peak = density.max() or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        rows.append(
            "".join("#" if value >= threshold else " " for value in density)
        )
    rows.append("-" * bins)
    rows.append(f"0{'':{bins - 2}}{hi:.2g}")
    return "\n".join(rows)


def series_panel(
    series: dict[str, np.ndarray], width: int = 72
) -> str:
    """Stacked sparklines with shared labels and min/max annotations."""
    if not series:
        return "(no data)"
    label_width = max(len(label) for label in series)
    lines = []
    for label, values in series.items():
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            lines.append(f"{label:<{label_width}} (no data)")
            continue
        lines.append(
            f"{label:<{label_width}} |{sparkline(values, width)}| "
            f"[{values.min():.3g}, {values.max():.3g}]"
        )
    return "\n".join(lines)
