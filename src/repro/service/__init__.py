"""Shared experiment daemon: HTTP front-end over the orchestrator.

The futures orchestrator (:mod:`repro.experiments.orchestrator`) gives
one process non-blocking ``submit``/``as_resolved`` semantics over a
persistent result store.  This package puts a network front-end on it
so *many* clients share one long-lived daemon -- one worker pool, one
store, one in-flight dedup table:

* :mod:`repro.service.codec` -- reversible JSON encoding of the
  request object universe (configs, policies, packs), the sibling of
  the orchestrator's one-way ``canonical``;
* :mod:`repro.service.protocol` -- the versioned wire envelopes for
  :class:`~repro.experiments.orchestrator.RunRequest` and
  :class:`~repro.experiments.orchestrator.RunArtifact`;
* :mod:`repro.service.server` -- the threaded stdlib-HTTP daemon
  behind ``repro serve`` (``POST /runs``, ``GET /runs/<fp>``,
  ``GET /runs?fp=...`` streaming, ``/healthz``, ``/stats``);
* :mod:`repro.service.client` -- :class:`ServiceClient`, a drop-in
  :class:`~repro.experiments.orchestrator.Orchestrator` replacement
  that resolves runs against a remote daemon (the CLI's ``--service``
  path);
* :mod:`repro.service.fleet` -- :class:`FleetClient`, the same
  consumer surface over *many* daemons sharing one store root,
  routing each fingerprint to exactly one member by rendezvous
  hashing and failing dead members over (the CLI's
  ``--service URL1,URL2,...`` path).

See DESIGN.md ("Experiment service", "Fleet") for the wire protocol,
dedup semantics and when to choose the in-process orchestrator (or a
single big daemon) instead.
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.fleet import (
    FleetClient,
    parse_fleet_spec,
    rendezvous_member,
)
from repro.service.protocol import (
    WIRE_VERSION,
    WireError,
    decode_artifact,
    decode_request,
    encode_artifact,
    encode_request,
)
from repro.service.server import ExperimentDaemon

__all__ = [
    "ExperimentDaemon",
    "FleetClient",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "WIRE_VERSION",
    "WireError",
    "decode_artifact",
    "decode_request",
    "encode_artifact",
    "encode_request",
    "parse_fleet_spec",
    "rendezvous_member",
]
