"""Fingerprint-routed fan-out of run execution over many daemons.

:class:`FleetClient` implements the same
:class:`~repro.experiments.orchestrator.Orchestrator` consumer surface
as :class:`~repro.service.client.ServiceClient` -- ``submit`` /
``submit_many`` / ``as_done`` / ``as_resolved`` / ``run`` /
``run_many`` / ``with_jobs`` -- against *many* daemon URLs at once, so
``--service URL1,URL2,URL3`` scales a cold sweep's miss execution
across hosts with zero changes to runner/scenarios/pareto/sensitivity
logic.  The members must share one store root (the segment backend is
lock-free under concurrent writers, so N daemons over one root is the
supported deployment); warm hits then resolve on whichever member is
asked.

Routing
-------

Each fingerprint is routed with rendezvous (highest-random-weight)
hashing: every member key is scored by ``sha256(key + "|" +
fingerprint)`` and the highest score wins.  The scoring needs no
coordination and no agreed member *order* -- any two clients
configured with the same member set route every fingerprint to the
same daemon, so a miss executes exactly once fleet-wide (the winning
daemon's in-flight registry dedups concurrent submissions, and the
shared store dedups across time).  When a member is added or removed
only ~1/N of the keyspace moves, unlike modulo hashing which
reshuffles nearly everything.

Failover
--------

Member failures surface as
:class:`~repro.service.client.ServiceUnavailable` (connection-level:
refused, reset, timed out, stream died).  The fleet marks the member
down and re-routes its unresolved fingerprints over the survivors.
This is safe, not just live: re-execution is idempotent -- the same
fingerprint reproduces byte-identical artifacts anywhere in the fleet
(simulations are deterministic functions of the request) and the
shared store dedups whichever copy lands -- so the worst case of a
kill mid-sweep is some duplicated *work*, never lost or duplicated
*artifacts*.  Protocol-level rejections (a :class:`ServiceError`
that was cleanly delivered) are not failover events; they surface.

A member marked down stays down for routing until :meth:`ping` or
:meth:`status` observes it healthy again.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.experiments.orchestrator import (
    RunArtifact,
    RunFuture,
    RunRequest,
)
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.protocol import check_detail

__all__ = [
    "FleetClient",
    "parse_fleet_spec",
    "rendezvous_member",
]


def rendezvous_member(fingerprint: str, member_keys: Sequence[str]) -> str:
    """The member that owns ``fingerprint``, by rendezvous hashing.

    Order-independent and coordination-free: every caller that agrees
    on the member *set* agrees on the winner.  Ties (impossible in
    practice for SHA-256, but the contract should not rely on that)
    break toward the lexicographically larger key.
    """
    if not member_keys:
        raise ServiceUnavailable("no fleet members to route to")
    return max(
        member_keys,
        key=lambda key: (
            hashlib.sha256(f"{key}|{fingerprint}".encode()).digest(),
            key,
        ),
    )


def rendezvous_order(
    fingerprint: str, member_keys: Sequence[str]
) -> list[str]:
    """Every member in failover order for ``fingerprint``.

    The head is :func:`rendezvous_member`'s winner; dropping a dead
    head leaves exactly the order the survivors would compute, which
    is what makes walking this list a correct failover policy.
    """
    return sorted(
        member_keys,
        key=lambda key: (
            hashlib.sha256(f"{key}|{fingerprint}".encode()).digest(),
            key,
        ),
        reverse=True,
    )


def parse_fleet_spec(spec) -> list[str]:
    """Member URLs from a ``--service`` value.

    Accepts a list/tuple of URLs, a comma-separated string, an
    ``@path`` reference to a fleet file, or a bare path to an existing
    file.  Fleet files hold one URL per line; blank lines and ``#``
    comments are skipped.  Duplicates collapse (first occurrence
    wins); an empty spec is refused.
    """
    if isinstance(spec, (list, tuple)):
        urls = [str(item).strip() for item in spec]
    else:
        text = str(spec).strip()
        if text.startswith("@"):
            urls = _read_fleet_file(Path(text[1:]))
        elif "," in text:
            urls = text.split(",")
        elif "//" not in text and ":" not in text and Path(text).is_file():
            urls = _read_fleet_file(Path(text))
        else:
            urls = [text]
    cleaned = list(dict.fromkeys(url.strip() for url in urls if url.strip()))
    if not cleaned:
        raise ServiceError(f"fleet spec names no members: {spec!r}")
    return cleaned


def _read_fleet_file(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as error:
        raise ServiceError(
            f"cannot read fleet file {path}: {error}"
        ) from None
    lines = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


class _Member:
    """One daemon in the fleet: its client plus health bookkeeping."""

    __slots__ = ("key", "client", "alive", "error", "health")

    def __init__(self, key: str, client: ServiceClient) -> None:
        self.key = key
        self.client = client
        self.alive = True
        self.error: str | None = None
        self.health: dict = {}


class _Entry:
    """One unresolved fingerprint: where it lives and who waits on it.

    ``future`` is the fleet-level future every handle wraps; it
    survives failovers.  ``member_key``/``member_future`` are the
    *current* placement and are rewritten when the member dies.
    """

    __slots__ = (
        "request",
        "fingerprint",
        "use_store",
        "detail",
        "future",
        "member_key",
        "member_future",
    )

    def __init__(
        self,
        request: RunRequest,
        fingerprint: str,
        use_store: bool,
        detail: str | None,
    ) -> None:
        self.request = request
        self.fingerprint = fingerprint
        self.use_store = use_store
        self.detail = detail
        self.future: Future = Future()
        self.member_key: str = ""
        self.member_future: RunFuture | None = None


class FleetClient:
    """Resolve run requests against a fleet of experiment daemons.

    Construction does not touch the network; the first submission (or
    an explicit :meth:`ping`) does.  Constructor parameters mirror
    :class:`~repro.service.client.ServiceClient` and are forwarded to
    every per-member client; ``urls`` additionally accepts anything
    :func:`parse_fleet_spec` does.
    """

    def __init__(
        self,
        urls,
        use_store: bool = True,
        progress: Callable[[int, int], None] | None = None,
        timeout_s: float = 10.0,
        detail: str = "full",
        compress: bool = True,
        poll_chunk: int | None = None,
        batch_chunk: int | None = None,
        poll_wait_s: float | None = None,
    ) -> None:
        self.use_store = use_store
        self.progress = progress
        self.detail = check_detail(detail)
        self.jobs = 0  # execution capacity lives daemon-side
        self._members: dict[str, _Member] = {}
        for url in parse_fleet_spec(urls):
            client = ServiceClient(
                url,
                use_store=use_store,
                timeout_s=timeout_s,
                detail=detail,
                compress=compress,
                poll_chunk=poll_chunk,
                batch_chunk=batch_chunk,
                poll_wait_s=poll_wait_s,
            )
            # Keyed by the *normalized* URL so clients configured with
            # cosmetically different spellings still agree on routing.
            self._members.setdefault(
                client.url, _Member(client.url, client)
            )
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}

    # -- membership and routing --------------------------------------------

    @property
    def urls(self) -> list[str]:
        """The normalized member URLs (stable order)."""
        return sorted(self._members)

    def _alive_keys(self) -> list[str]:
        with self._lock:
            return [
                key
                for key, member in self._members.items()
                if member.alive
            ]

    def member_for(self, fingerprint: str) -> str:
        """The member URL currently owning ``fingerprint``."""
        alive = self._alive_keys()
        if not alive:
            raise ServiceUnavailable(self._exhausted_message())
        return rendezvous_member(fingerprint, alive)

    def _exhausted_message(self) -> str:
        with self._lock:
            details = "; ".join(
                f"{key}: {member.error or 'down'}"
                for key, member in sorted(self._members.items())
            )
        return f"all fleet members are unavailable ({details})"

    def _mark_down(self, member_key: str, error: BaseException) -> None:
        with self._lock:
            member = self._members.get(member_key)
            if member is not None and member.alive:
                member.alive = False
                member.error = str(error)

    # -- entry plumbing ----------------------------------------------------

    def _forget(self, fingerprint: str) -> None:
        with self._lock:
            self._entries.pop(fingerprint, None)

    def _settle_entry(self, entry: _Entry) -> None:
        """Copy a done member future's outcome into the fleet future."""
        member_future = entry.member_future
        if member_future is None or not member_future.done():
            return
        error = member_future.exception(timeout=0)
        try:
            if error is None:
                entry.future.set_result(member_future.result(timeout=0))
            else:
                entry.future.set_exception(error)
        except InvalidStateError:
            pass  # a concurrent path settled it first

    def _register(
        self,
        request: RunRequest,
        fingerprint: str,
        use_store: bool,
        detail: str | None,
    ) -> tuple[_Entry, bool]:
        """The entry for a fingerprint, creating it if absent.

        Returns ``(entry, created)``.  Duplicate submissions -- same
        fingerprint, any handle -- share one entry and therefore one
        fleet future, mirroring the daemon's own in-flight dedup.
        """
        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:
                return existing, False
            entry = _Entry(request, fingerprint, use_store, detail)
            self._entries[fingerprint] = entry
        entry.future.add_done_callback(
            lambda _done, fp=fingerprint: self._forget(fp)
        )
        return entry, True

    def _assign(self, entries: list[_Entry]) -> None:
        """Place entries on members, spraying per-member in parallel.

        Loops until every entry is placed or every member is down (in
        which case the stranded futures fail with the exhaustion
        error).  A member that dies mid-spray is marked down and its
        share rerouted on the next pass -- the failover path and the
        happy path are one code path.
        """
        remaining = [
            entry for entry in entries if not entry.future.done()
        ]
        while remaining:
            alive = self._alive_keys()
            if not alive:
                error = ServiceUnavailable(self._exhausted_message())
                for entry in remaining:
                    try:
                        entry.future.set_exception(error)
                    except InvalidStateError:
                        pass
                return
            groups: dict[str, list[_Entry]] = {}
            for entry in remaining:
                key = rendezvous_member(entry.fingerprint, alive)
                groups.setdefault(key, []).append(entry)
            failed: list[_Entry] = []
            failed_lock = threading.Lock()

            def spray(member_key: str, group: list[_Entry]) -> None:
                member = self._members[member_key]
                # Entries can disagree on use_store/detail; batch the
                # agreeing runs together.
                subgroups: dict[tuple, list[_Entry]] = {}
                for entry in group:
                    subgroups.setdefault(
                        (entry.use_store, entry.detail), []
                    ).append(entry)
                for (use_store, detail), sub in subgroups.items():
                    try:
                        member_futures = member.client.submit_many(
                            [entry.request for entry in sub],
                            use_store=use_store,
                            detail=detail,
                        )
                    except ServiceUnavailable as error:
                        self._mark_down(member_key, error)
                        with failed_lock:
                            failed.extend(sub)
                        continue
                    for entry, member_future in zip(sub, member_futures):
                        with self._lock:
                            entry.member_key = member_key
                            entry.member_future = member_future
                        if member_future.done():
                            self._settle_entry(entry)

            if len(groups) == 1:
                spray(*next(iter(groups.items())))
            else:
                threads = [
                    threading.Thread(
                        target=spray, args=(key, group), daemon=True
                    )
                    for key, group in groups.items()
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            remaining = failed

    def _failover(self, member_key: str, error: BaseException) -> None:
        """Mark a member down and reroute its unresolved entries."""
        self._mark_down(member_key, error)
        with self._lock:
            stranded = [
                entry
                for entry in self._entries.values()
                if entry.member_key == member_key
                and not entry.future.done()
            ]
        if stranded:
            self._assign(stranded)

    def _await(self, fingerprint: str, timeout: float | None) -> None:
        """Block until one fingerprint settles, failing members over."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            with self._lock:
                entry = self._entries.get(fingerprint)
            if entry is None or entry.future.done():
                return
            member_future = entry.member_future
            member_key = entry.member_key
            if member_future is None:
                # Mid-reassignment; the spray loop will place it.
                time.sleep(0.01)
                continue
            if member_future.done():
                self._settle_entry(entry)
                return
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"run {fingerprint[:12]}... still pending"
                    )
            try:
                member_future.result(remaining)
            except ServiceUnavailable as error:
                self._failover(member_key, error)
            except TimeoutError:
                raise
            except BaseException:
                if member_future.done():
                    # The run itself failed daemon-side; that outcome
                    # is terminal and propagates via the fleet future.
                    self._settle_entry(entry)
                    return
                raise  # a protocol-level error from the poll itself
            else:
                self._settle_entry(entry)
                return

    # -- the orchestrator surface ------------------------------------------

    def with_jobs(self, jobs: int) -> "FleetClient":
        """No-op for API compatibility: capacity is the members'."""
        return self

    def with_meta(self, extra: dict) -> "FleetClient":
        """Forward meta stamps (the campaign header) to every member."""
        for member in self._members.values():
            member.client.with_meta(extra)
        return self

    def lookup(self, request, fingerprint: str) -> RunFuture | None:
        """A warm-only store read, tried fleet-wide.

        Members share one store root, so the rendezvous owner answers
        first; a down owner fails over to the remaining members in
        routing order (a miss on any live member is authoritative --
        the store is shared).
        """
        alive = self._alive_keys()
        for key in rendezvous_order(fingerprint, alive):
            member = self._members[key]
            try:
                return member.client.lookup(request, fingerprint)
            except ServiceUnavailable as error:
                self._mark_down(key, error)
        return None

    def close(self) -> None:
        """Drop every member's keep-alive connection (idempotent)."""
        for member in self._members.values():
            member.client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def submit(
        self,
        request: RunRequest,
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> RunFuture:
        """Submit one request to the member that owns its fingerprint."""
        return self.submit_many(
            [request], use_store=use_store, detail=detail
        )[0]

    def submit_many(
        self,
        requests: Sequence[RunRequest],
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> list[RunFuture]:
        """Submit a batch, partitioned per member by rendezvous.

        Per-member shares go out as that member's own chunked
        ``submit_many`` on parallel threads, so fleet submission
        latency is the *slowest member's* share, not the sum.
        Duplicate fingerprints -- within the batch or against earlier
        submissions -- share one fleet future.
        """
        if use_store is None:
            use_store = self.use_store
        if detail is not None:
            detail = check_detail(detail)
        order: list[str] = []
        handles: dict[str, RunFuture] = {}
        created: list[_Entry] = []
        for request in requests:
            fingerprint = request.fingerprint()
            order.append(fingerprint)
            if fingerprint in handles:
                continue
            entry, fresh = self._register(
                request, fingerprint, use_store, detail
            )
            if fresh:
                created.append(entry)
            handles[fingerprint] = _FleetRunFuture(
                self, request, fingerprint, entry.future
            )
        if created:
            self._assign(created)
        return [handles[fingerprint] for fingerprint in order]

    def _notify(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    def as_done(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunFuture]:
        """Yield unique futures as members complete their runs.

        The per-member ``as_done`` poll streams are pumped on
        background threads and merged here in arrival order, so a
        fast member's completions are never gated on a slow (or dead)
        member's long-poll.  A pump that dies with
        :class:`ServiceUnavailable` triggers failover: the member's
        unresolved fingerprints are rerouted and fresh pumps cover
        them on the survivors.
        """
        unique = list(dict.fromkeys(futures))
        total = len(unique)
        done = 0
        waiting: dict[str, list[RunFuture]] = {}
        for future in unique:
            if future.done():
                done += 1
                self._notify(done, total)
                yield future
            else:
                waiting.setdefault(future.fingerprint, []).append(future)
        if not waiting:
            return
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        events: queue.Queue = queue.Queue()
        covered: set[str] = set()

        def pump(member_key: str, fingerprints: list[str]) -> None:
            member = self._members[member_key]
            member_futures = []
            with self._lock:
                for fingerprint in fingerprints:
                    entry = self._entries.get(fingerprint)
                    if (
                        entry is not None
                        and entry.member_key == member_key
                        and entry.member_future is not None
                    ):
                        member_futures.append(entry.member_future)
            try:
                for settled in member.client.as_done(member_futures):
                    events.put(
                        ("settled", member_key, settled.fingerprint)
                    )
                events.put(("drained", member_key, fingerprints))
            except ServiceUnavailable as error:
                events.put(("down", member_key, (fingerprints, error)))
            except BaseException as error:  # surfaced on the caller
                events.put(("failed", member_key, (fingerprints, error)))

        def launch_pumps() -> None:
            groups: dict[str, list[str]] = {}
            with self._lock:
                for fingerprint in waiting:
                    if fingerprint in covered:
                        continue
                    entry = self._entries.get(fingerprint)
                    if entry is None or entry.member_future is None:
                        continue
                    groups.setdefault(entry.member_key, []).append(
                        fingerprint
                    )
            for member_key, fingerprints in groups.items():
                covered.update(fingerprints)
                threading.Thread(
                    target=pump,
                    args=(member_key, fingerprints),
                    daemon=True,
                ).start()

        def sweep() -> Iterator[RunFuture]:
            # Entries settled by any path (pump, concurrent poller,
            # failover exhaustion) surface here.
            for fingerprint in [
                fp for fp, group in waiting.items() if group[0].done()
            ]:
                for future in waiting.pop(fingerprint):
                    yield future

        launch_pumps()
        while waiting:
            for future in sweep():
                done += 1
                self._notify(done, total)
                yield future
            if not waiting:
                return
            wait_s = 0.25
            if deadline is not None:
                wait_s = min(wait_s, deadline - time.monotonic())
                if wait_s <= 0:
                    raise TimeoutError(
                        f"{len(waiting)} run(s) still pending"
                    )
            try:
                kind, member_key, payload = events.get(timeout=wait_s)
            except queue.Empty:
                launch_pumps()  # cover entries placed since last pass
                continue
            if kind == "settled":
                fingerprint = payload
                with self._lock:
                    entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._settle_entry(entry)
                covered.discard(fingerprint)
            elif kind == "drained":
                covered.difference_update(payload)
                launch_pumps()
            elif kind == "down":
                fingerprints, error = payload
                covered.difference_update(fingerprints)
                self._failover(member_key, error)
                launch_pumps()
            else:  # "failed": a pump hit a non-failover error
                fingerprints, error = payload
                covered.difference_update(fingerprints)
                raise error

    def as_resolved(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunArtifact]:
        """Yield artifacts in fleet completion order (errors raise)."""
        for future in self.as_done(futures, timeout=timeout):
            yield future.result()

    def run(
        self,
        request: RunRequest,
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> RunArtifact:
        """Resolve one request against the fleet, blocking."""
        return self.submit(
            request, use_store=use_store, detail=detail
        ).result()

    def run_many(
        self,
        requests: Sequence[RunRequest],
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> list[RunArtifact]:
        """Resolve a batch fleet-wide, preserving request order."""
        futures = self.submit_many(
            requests, use_store=use_store, detail=detail
        )
        first_error: BaseException | None = None
        for future in self.as_done(futures):
            error = future.exception()
            if error is not None:
                first_error = first_error or error
        if first_error is not None:
            raise first_error
        return [future.result() for future in futures]

    # -- health and introspection ------------------------------------------

    def ping(self) -> dict:
        """Probe every member; raises when none answers.

        Healthy members (re)join the routing set -- this is also the
        recovery path for a member that was marked down.  The return
        value carries the fleet block :meth:`status` renders.
        """
        payload = self.status()
        if not any(
            member["alive"] for member in payload["fleet"]["members"]
        ):
            raise ServiceUnavailable(self._exhausted_message())
        return payload

    def status(self) -> dict:
        """Per-member health/load without raising: the ``fleet`` block."""
        members = []
        for key in self.urls:
            member = self._members[key]
            try:
                health = member.client.ping()
            except ServiceError as error:
                with self._lock:
                    member.alive = False
                    member.error = str(error)
                    member.health = {}
            else:
                with self._lock:
                    member.alive = True
                    member.error = None
                    member.health = health
            members.append(
                {
                    "url": key,
                    "alive": member.alive,
                    "error": member.error,
                    "daemon_id": member.health.get("daemon_id"),
                    "jobs": member.health.get("jobs"),
                    "inflight": member.health.get("inflight"),
                    "queue_depth": member.health.get("queue_depth"),
                    "workload_cache": member.health.get("workload_cache"),
                    "engine_modes": member.health.get("engine_modes"),
                }
            )
        alive = sum(1 for member in members if member["alive"])
        return {
            "kind": "fleet",
            "fleet": {
                "members": members,
                "alive": alive,
                "total": len(members),
            },
        }

    def stats(self) -> dict:
        """Every reachable member's ``/stats``, keyed by member URL."""
        per_member = {}
        for key in self.urls:
            try:
                per_member[key] = self._members[key].client.stats()
            except ServiceError as error:
                per_member[key] = {"error": str(error)}
        return {"kind": "fleet_stats", "members": per_member}


class _FleetRunFuture(RunFuture):
    """A :class:`RunFuture` whose pending state lives on the fleet.

    ``result``/``exception`` long-poll the fingerprint's *current*
    member through :meth:`FleetClient._await`, which reroutes on
    member death -- so a handle taken before a failover still
    resolves after it.
    """

    __slots__ = ("_fleet",)

    def __init__(
        self,
        fleet: FleetClient,
        request: RunRequest,
        fingerprint: str,
        future: Future,
    ) -> None:
        super().__init__(request, fingerprint, future)
        self._fleet = fleet

    def _ensure_resolution(self, timeout: float | None) -> None:
        if not self._future.done():
            self._fleet._await(self.fingerprint, timeout)

    def result(self, timeout: float | None = None) -> RunArtifact:
        """Block for the artifact, failing dead members over."""
        self._ensure_resolution(timeout)
        return self._future.result(timeout)

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        """The run's terminal error, or None (blocks like result)."""
        self._ensure_resolution(timeout)
        return self._future.exception(timeout)
