"""The experiment daemon: a threaded stdlib-HTTP front-end.

``repro serve`` runs one :class:`ExperimentDaemon` around one
long-lived :class:`~repro.experiments.orchestrator.Orchestrator` (and
therefore one worker pool and one segment-capable result store); any
number of :class:`~repro.service.client.ServiceClient` processes share
it.  Endpoints:

``POST /runs``
    Submit one encoded :class:`RunRequest`.  Store hits answer ``200``
    with the artifact immediately; misses answer ``202`` (pending) and
    enter the orchestrator's in-flight dedup table, so overlapping
    submissions of one fingerprint -- same client or different clients
    -- execute exactly once.
``POST /runs/batch`` (wire v2)
    Submit many encoded requests in one round trip.  The reply is one
    JSON line per entry, in entry order: artifact (warm), pending
    (launched/in flight) or error -- the dispositions a client needs
    to fan a whole sweep out in ~#requests/chunk HTTP exchanges.
``POST /runs/poll`` (wire v2)
    Settle many fingerprints in one call (the body-borne replacement
    for ``GET /runs?fp=...``, which URL length caps).  ``wait=0``
    answers immediately with one buffered -- and compressible -- body;
    ``wait>0`` long-poll streams JSON lines in completion order.
``GET /runs/<fingerprint>[?wait=S&v=V&detail=D]``
    Poll one run.  ``wait`` long-polls up to S seconds (capped at
    :data:`MAX_WAIT_S`) for completion; replies ``200`` artifact,
    ``202`` pending, ``404`` unknown, or ``500`` with the run's error.
    ``v``/``detail`` select the reply envelope version (default 1, so
    old clients keep decoding) and projection level.
``GET /runs?fp=...&fp=...[&wait=S&v=V&detail=D]``
    Stream the named runs back as JSON lines in *completion* order --
    the wire mirror of
    :meth:`~repro.experiments.orchestrator.Orchestrator.as_resolved`.
    Runs still pending when ``wait`` expires stream a ``pending``
    line; the client re-polls.
``GET /healthz`` and ``GET /stats``
    Liveness (with the supported wire versions, which is how clients
    negotiate), and counters (hits/misses/computed/in-flight/errors,
    the store's own counters, and the wire block: bytes in/out,
    gzip vs identity replies, batch sizes, request-latency p50/p99).

Dedup and the warm fast path
----------------------------

Fingerprints are self-certifying SHA-256 content hashes, so the warm
path trusts the one declared in the envelope: if it already resolves
(response cache, store), the daemon replies without decoding the full
request -- a client that declares a wrong fingerprint only mis-serves
itself.  Misses take the strict path: the request is decoded, its
fingerprint recomputed and verified (``409`` on mismatch), and only
then does it enter the shared orchestrator core
(:meth:`~repro.experiments.orchestrator.Orchestrator.resolve`).

The response cache stores fully *rendered* reply bodies keyed by
``(fingerprint, version, detail, encoding)`` -- for gzip that means
pre-compressed bytes, so a warm hit is one cache lookup plus one
socket write with no per-request ``json.dumps`` or ``gzip.compress``
on the hot path.  Gzip variants are complete gzip members whose
decompressed form ends in a newline; batch and buffered-poll replies
are built by *concatenating* members (a multi-member stream is valid
gzip and ``gzip.decompress`` handles it), so batching never has to
re-compress cached artifacts.

Handlers run on per-connection daemon threads
(``ThreadingHTTPServer``); waits are capped at :data:`MAX_WAIT_S`,
idle keep-alive connections are closed after ``idle_timeout_s``, and
every write failure (client gone mid-poll) is swallowed, so an
abandoned connection occupies one thread for at most its ``wait`` and
never wedges the daemon or the worker that owns the run.  Request
bodies above ``max_body_bytes`` are refused with ``413`` *before*
being read (the connection closes: the unread body would desync
keep-alive framing); bodies without a ``Content-Length`` get ``411``.
"""

from __future__ import annotations

import gzip
import json
import threading
import time
import zlib
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator
from urllib.parse import parse_qs, urlsplit

from repro.experiments.orchestrator import Orchestrator, RunFuture
from repro.service.protocol import (
    FingerprintMismatch,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WireError,
    check_detail,
    decode_batch,
    decode_poll,
    decode_request,
    encode_artifact,
    encode_error,
    encode_health,
    encode_pending,
)

__all__ = [
    "DEFAULT_IDLE_TIMEOUT_S",
    "DEFAULT_MAX_BODY_BYTES",
    "ExperimentDaemon",
    "MAX_WAIT_S",
]

#: Hard cap on a single long-poll/stream wait (seconds).
MAX_WAIT_S = 60.0

#: Default cap on request-body size (encoded recorded-trace packs are
#: the big legitimate payload; 64 MiB leaves them ample headroom).
DEFAULT_MAX_BODY_BYTES = 64 << 20

#: Idle keep-alive connections are closed after this many seconds, so
#: a daemon serving weeks of bursty clients does not accumulate one
#: parked thread per client that ever connected.
DEFAULT_IDLE_TIMEOUT_S = 120.0

#: Rendered reply bodies kept for the warm fast path.  Keys are
#: ``(fingerprint, version, detail, encoding)`` -- a fingerprint hot
#: in every variant costs at most 8 slots (2 versions x 2 details x
#: 2 encodings), headline/gzip variants being tiny.
_RESPONSE_CACHE_SIZE = 4096

#: Failed-run messages retained for polls (bounded; a daemon lives
#: for weeks and failures must not accumulate without limit).
_ERROR_CACHE_SIZE = 1024

#: Compression level for cached artifact bodies: 6 is zlib's sweet
#: spot (±1% of level 9's ratio at a fraction of the CPU) and the
#: cost is paid once per cached variant, not per request.
_GZIP_LEVEL = 6

#: Request latencies retained for the /stats p50/p99 (a sliding
#: window, not a full history: the daemon is long-lived).
_LATENCY_WINDOW = 4096

#: Most-recent campaign ids kept in the per-campaign submission tally.
_CAMPAIGN_WINDOW = 256


class ExperimentDaemon:
    """One orchestrator served over HTTP to many clients.

    Parameters
    ----------
    orchestrator:
        The shared execution backend (its ``jobs`` and store root are
        the daemon's capacity and persistence).
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    max_body_bytes:
        Request bodies larger than this are refused with ``413``
        before being read (also the cap on a gzip body's *decompressed*
        size, so a compression bomb cannot balloon in memory).
    idle_timeout_s:
        Keep-alive connections idle this long are closed server-side;
        ``None`` disables the idle reaper (connections park forever).
    daemon_id:
        Stable member identity for fleet provenance (default
        ``host:port`` of the bound address).  Echoed in ``/healthz``
        and ``/stats`` and stamped into every artifact this daemon
        records (the store document's ``meta.daemon``), so a sweep
        spread over a fleet remains attributable per member.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        idle_timeout_s: float | None = DEFAULT_IDLE_TIMEOUT_S,
        daemon_id: str | None = None,
    ) -> None:
        self.orchestrator = orchestrator
        self.max_body_bytes = int(max_body_bytes)
        self.idle_timeout_s = idle_timeout_s
        self._killed = False
        self._futures: dict[str, RunFuture] = {}
        self._errors: OrderedDict[str, str] = OrderedDict()
        self._responses: OrderedDict[tuple, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self._started = time.time()
        self.counters = {
            "requests": 0,
            "submitted": 0,
            "hits": 0,
            "computed": 0,
            "errors": 0,
        }
        #: Decoded submissions per simulation driver ("slot"/"event").
        #: Counted on the decode path only -- warm fast-path hits answer
        #: from the response cache without decoding, so these are
        #: "requests whose engine mode this daemon actually saw".
        self.engine_modes: dict[str, int] = {}
        #: Submissions per campaign, from the ``X-Repro-Campaign``
        #: header the suite driver sends.  Purely observational --
        #: routing, dedup and the store ignore campaigns entirely.
        self.campaigns: dict[str, int] = {}
        self.wire_counters = {
            "bytes_in": 0,
            "bytes_out": 0,
            "responses_gzip": 0,
            "responses_identity": 0,
            "batch_requests": 0,
            "batch_entries": 0,
        }
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        handler = _build_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        bound_host, bound_port = self.address
        self.daemon_id = daemon_id or f"{bound_host}:{bound_port}"
        # Fleet provenance: every artifact this daemon records carries
        # the member that executed it.  setdefault so an orchestrator
        # built with explicit provenance meta keeps it.
        self.orchestrator.meta.setdefault("daemon", self.daemon_id)
        self._thread: threading.Thread | None = None
        self._serial: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients should connect to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ExperimentDaemon":
        """Serve in a background thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-service",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`/interrupt."""
        self._server.serve_forever()

    def _serial_runner(self) -> ThreadPoolExecutor:
        """Capacity-1 executor for a serial orchestrator's launches."""
        if self._serial is None:
            self._serial = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serial-run"
            )
        return self._serial

    def kill(self) -> None:
        """Drop off the network abruptly (the fleet-failure drill).

        Unlike :meth:`close` this models a member dying mid-sweep:
        the listening socket closes (new connections are refused),
        in-flight handler threads drop their connections without
        replying (clients observe a connection-level failure, not a
        clean protocol answer), and long-polls/streams wake within
        ~0.25 s instead of running out their ``wait``.  The
        orchestrator is left alone -- runs already executing drain
        into the shared store, which is safe because re-execution on
        a surviving member is idempotent.  Call :meth:`close` after
        for full teardown (idempotent).
        """
        self._killed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Stop serving and shut the orchestrator's pool down."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._serial is not None:
            self._serial.shutdown(wait=True)
            self._serial = None
        self.orchestrator.close()

    def __enter__(self) -> "ExperimentDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bookkeeping -------------------------------------------------------

    def _count(self, key: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[key] += delta

    def _count_wire(self, key: str, delta: int = 1) -> None:
        with self._lock:
            self.wire_counters[key] += delta

    def _record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def _count_campaign(self, campaign: str | None, delta: int = 1) -> None:
        """Tally submissions a suite driver labeled with a campaign id.

        Bounded defensively: a daemon serving many one-off campaigns
        keeps the newest :data:`_CAMPAIGN_WINDOW` ids rather than
        growing without limit.
        """
        if not campaign:
            return
        with self._lock:
            self.campaigns[campaign] = (
                self.campaigns.get(campaign, 0) + delta
            )
            while len(self.campaigns) > _CAMPAIGN_WINDOW:
                self.campaigns.pop(next(iter(self.campaigns)))

    def _record_sent(self, nbytes: int, encoding: str) -> None:
        with self._lock:
            self.wire_counters["bytes_out"] += nbytes
            key = (
                "responses_gzip" if encoding == "gzip"
                else "responses_identity"
            )
            self.wire_counters[key] += 1

    def _cache_response(self, key: tuple, payload: bytes) -> None:
        with self._lock:
            self._responses[key] = payload
            self._responses.move_to_end(key)
            while len(self._responses) > _RESPONSE_CACHE_SIZE:
                self._responses.popitem(last=False)

    def _cached_response(self, key: tuple) -> bytes | None:
        with self._lock:
            payload = self._responses.get(key)
            if payload is not None:
                self._responses.move_to_end(key)
            return payload

    def _artifact_bytes(
        self,
        future: RunFuture,
        version: int = 1,
        detail: str = "full",
        encoding: str = "identity",
    ) -> bytes:
        """One rendered reply body for a done future, cached per variant.

        Identity variants are the bare JSON object; gzip variants are
        one complete gzip member whose decompressed form is the JSON
        object plus a trailing newline, so batch replies concatenate
        cached members verbatim (see the module docstring).
        """
        key = (future.fingerprint, version, detail, encoding)
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        if encoding == "gzip":
            # Derive from the identity variant so both encodings carry
            # the same envelope byte for byte (the artifact's volatile
            # metadata -- elapsed_s, source -- would otherwise differ
            # between a re-resolve and the first render).
            identity = self._artifact_bytes(future, version, detail)
            body = gzip.compress(
                identity + b"\n", compresslevel=_GZIP_LEVEL, mtime=0
            )
        else:
            artifact = future.result(timeout=0)
            body = _dumps(
                encode_artifact(
                    artifact, detail=detail, wire_version=version
                )
            )
        self._cache_response(key, body)
        return body

    def _finish(self, fingerprint: str, base: Future) -> None:
        """Done callback of every miss: counters, errors, registry."""
        error = base.exception()
        if error is not None:
            with self._lock:
                self._errors[fingerprint] = (
                    f"{type(error).__name__}: {error}"
                )
                self._errors.move_to_end(fingerprint)
                while len(self._errors) > _ERROR_CACHE_SIZE:
                    self._errors.popitem(last=False)
            self._count("errors")
        else:
            self._count("computed")
            with self._lock:
                # A successful recompute supersedes any stale failure.
                self._errors.pop(fingerprint, None)
        with self._lock:
            self._futures.pop(fingerprint, None)

    # -- request handling (HTTP-free; the handler is a thin shim) ----------

    def handle_submit(
        self,
        payload: dict,
        detail: str | None = None,
        encoding: str = "identity",
        campaign: str | None = None,
    ) -> tuple[int, bytes, str]:
        """``POST /runs`` (and one batch entry): ``(status, body, enc)``.

        ``detail=None`` reads the level from the payload (v2 field);
        batch entries get the batch-level detail passed in instead.
        ``encoding`` is what the rendered artifact body should use --
        error and pending replies are always identity (they are tiny,
        and per-line gzip wrapping is the batch assembler's job).
        ``campaign`` is the submitter's ``X-Repro-Campaign`` label,
        tallied into the ``/stats`` campaigns block.
        """
        self._count("submitted")
        self._count_campaign(campaign)
        if not isinstance(payload, dict):
            return 400, _dumps(
                encode_error("expected a JSON object body", status=400)
            ), "identity"
        version = payload.get("wire_version")
        if (
            version not in SUPPORTED_WIRE_VERSIONS
            or payload.get("kind") != "run_request"
        ):
            # Checked before the warm fast path too: a mismatched peer
            # must be refused deterministically, not served whenever
            # its fingerprint happens to be cached.
            return 400, _dumps(
                encode_error(
                    "expected a run_request payload at a supported "
                    f"wire version {SUPPORTED_WIRE_VERSIONS}",
                    status=400,
                )
            ), "identity"
        if version < 2:
            detail = "full"  # v1 knows only the full ledger
        elif detail is None:
            try:
                detail = check_detail(payload.get("detail"))
            except WireError as error:
                return 400, _dumps(
                    encode_error(str(error), status=400, wire_version=version)
                ), "identity"
        declared = payload.get("fingerprint")
        use_store = bool(payload.get("use_store", True))
        if use_store and isinstance(declared, str):
            cached = self._cached_response(
                (declared, version, detail, encoding)
            )
            if cached is not None:
                self._count("hits")
                return 200, cached, encoding
        try:
            request, fingerprint, use_store = decode_request(payload)
        except FingerprintMismatch as error:
            return 409, _dumps(
                encode_error(str(error), status=409, wire_version=version)
            ), "identity"
        except WireError as error:
            return 400, _dumps(
                encode_error(str(error), status=400, wire_version=version)
            ), "identity"
        engine = getattr(request.options, "engine", None)
        kind = getattr(engine, "kind", "slot")
        with self._lock:
            self.engine_modes[kind] = self.engine_modes.get(kind, 0) + 1
        if use_store:
            hit = self.orchestrator.lookup(request, fingerprint)
            if hit is not None:
                self._count("hits")
                return 200, self._artifact_bytes(
                    hit, version, detail, encoding
                ), encoding
        # Miss: claim the fingerprint in the daemon registry *before*
        # launching, so overlapping submissions -- same client or a
        # different one, pooled or serial -- park on one run.  (The
        # orchestrator pool dedups too, but only for jobs > 1; the
        # registry also backs /runs polls and error reporting.)
        with self._lock:
            existing = self._futures.get(fingerprint)
            if existing is None:
                wrapper: Future = Future()
                shared = RunFuture(request, fingerprint, wrapper)
                self._futures[fingerprint] = shared
                wrapper.add_done_callback(
                    lambda base, fp=fingerprint: self._finish(fp, base)
                )
        if existing is not None:
            return 202, _dumps(
                encode_pending(fingerprint, wire_version=version)
            ), "identity"
        # A serial orchestrator executes launches inline; running that
        # on the handler thread would stall the POST for the whole
        # simulation (longer than any client timeout), so serial
        # launches move to a capacity-1 runner thread.  Misses answer
        # 202 unconditionally -- even a launch that fails immediately
        # reports through poll/stream, keeping the wire contract
        # deterministic (200 = store hit, 202 = accepted).
        if self.orchestrator.jobs == 1:
            def _serial_launch() -> None:
                try:
                    done = self.orchestrator.launch(request, fingerprint)
                except Exception as error:
                    wrapper.set_exception(error)
                else:
                    _chain(done._future, wrapper)

            self._serial_runner().submit(_serial_launch)
        else:
            try:
                launched = self.orchestrator.launch(request, fingerprint)
            except Exception as error:
                # e.g. a broken/closed worker pool: the claimed
                # registry entry must still resolve, or this
                # fingerprint would answer 202 forever.
                wrapper.set_exception(error)
            else:
                _chain(launched._future, wrapper)
        return 202, _dumps(
            encode_pending(fingerprint, wire_version=version)
        ), "identity"

    def handle_batch(
        self,
        payload: dict,
        encoding: str = "identity",
        campaign: str | None = None,
    ) -> tuple[int, bytes, str]:
        """``POST /runs/batch``: one disposition line per entry.

        Gzip bodies are assembled by concatenating members: cached
        artifact variants verbatim, tiny pending/error lines wrapped
        on the fly.  A malformed entry poisons only its own line.
        """
        self._count_wire("batch_requests")
        try:
            entries, detail = decode_batch(payload)
        except WireError as error:
            return 400, _dumps(encode_error(str(error), status=400)), (
                "identity"
            )
        self._count_wire("batch_entries", len(entries))
        parts = []
        for entry in entries:
            _, body, used = self.handle_submit(
                entry, detail=detail, encoding=encoding, campaign=campaign
            )
            parts.append(_as_member(body, used, encoding))
        return 200, b"".join(parts), encoding

    def handle_poll_batch(
        self,
        fingerprints: list[str],
        detail: str = "full",
        encoding: str = "identity",
    ) -> tuple[int, bytes, str]:
        """``POST /runs/poll`` with ``wait=0``: one buffered body.

        One line per distinct fingerprint: artifact, pending, or error
        (404 unknown / 500 failed), assembled like a batch reply so
        warm artifacts reuse their pre-compressed cache entries.
        """
        parts = []
        for fingerprint in dict.fromkeys(fingerprints):
            _, body, used = self.handle_poll(
                fingerprint,
                0.0,
                version=WIRE_VERSION,
                detail=detail,
                encoding=encoding,
            )
            parts.append(_as_member(body, used, encoding))
        return 200, b"".join(parts), encoding

    def _lookup(self, fingerprint: str) -> RunFuture | None:
        """A future for a fingerprint: in-flight, else store-resolved."""
        with self._lock:
            future = self._futures.get(fingerprint)
        if future is not None:
            return future
        hit = self.orchestrator.lookup(None, fingerprint)
        return hit

    def handle_poll(
        self,
        fingerprint: str,
        wait_s: float,
        version: int = 1,
        detail: str = "full",
        encoding: str = "identity",
    ) -> tuple[int, bytes, str]:
        """``GET /runs/<fingerprint>``: ``(status, body, encoding)``."""
        deadline = time.monotonic() + min(max(wait_s, 0.0), MAX_WAIT_S)
        while True:
            future = self._lookup(fingerprint)
            if future is not None and future.done():
                if future.exception(timeout=0) is None:
                    return 200, self._artifact_bytes(
                        future, version, detail, encoding
                    ), encoding
                return 500, _dumps(
                    encode_error(
                        self._error_message(future),
                        fingerprint=fingerprint,
                        status=500,
                        wire_version=version,
                    )
                ), "identity"
            if future is None:
                with self._lock:
                    message = self._errors.get(fingerprint)
                if message is not None:
                    return 500, _dumps(
                        encode_error(
                            message,
                            fingerprint=fingerprint,
                            status=500,
                            wire_version=version,
                        )
                    ), "identity"
                return 404, _dumps(
                    encode_error(
                        "unknown fingerprint (not stored, not in flight)",
                        fingerprint=fingerprint,
                        status=404,
                        wire_version=version,
                    )
                ), "identity"
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return 202, _dumps(
                    encode_pending(fingerprint, wire_version=version)
                ), "identity"
            try:
                # Chunked so a killed daemon's parked long-polls wake
                # within ~0.25 s instead of running out their wait.
                future.result(timeout=min(remaining, 0.25))
            except FutureTimeoutError:
                if self._killed:
                    # Sentinel: the handler drops the connection
                    # without a reply (the member is "gone").
                    return 0, b"", "identity"
                continue
            except Exception:  # resolved to an error; loop reports it
                continue

    def handle_stream(
        self,
        fingerprints: list[str],
        wait_s: float,
        version: int = 1,
        detail: str = "full",
    ) -> Iterator[bytes]:
        """``GET /runs?fp=...``: JSON lines in completion order.

        Always identity-encoded: lines go out as runs complete, and
        close-delimited incremental gzip would force clients into
        streaming decompression for no warm-path gain (streamed lines
        are the *cold* path; warm settlement uses the buffered poll).
        """
        deadline = time.monotonic() + min(max(wait_s, 0.0), MAX_WAIT_S)
        pending: dict[Future, str] = {}
        for fingerprint in dict.fromkeys(fingerprints):
            future = self._lookup(fingerprint)
            if future is None:
                with self._lock:
                    message = self._errors.get(fingerprint)
                if message is not None:
                    yield _dumps(
                        encode_error(
                            message,
                            fingerprint=fingerprint,
                            status=500,
                            wire_version=version,
                        )
                    ) + b"\n"
                    continue
                yield _dumps(
                    encode_error(
                        "unknown fingerprint (not stored, not in flight)",
                        fingerprint=fingerprint,
                        status=404,
                        wire_version=version,
                    )
                ) + b"\n"
            elif future.done():
                yield self._line_for(future, version, detail)
            else:
                pending[future._future] = fingerprint
        while pending:
            if self._killed:
                # Ending the close-delimited stream early leaves the
                # remaining runs pending; the client's next round hits
                # the closed socket and fails the member over.
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for fingerprint in pending.values():
                    yield _dumps(
                        encode_pending(fingerprint, wire_version=version)
                    ) + b"\n"
                return
            done_now, _ = wait(
                pending,
                timeout=min(remaining, 0.25),
                return_when=FIRST_COMPLETED,
            )
            for base in done_now:
                fingerprint = pending.pop(base)
                yield self._line_for(
                    RunFuture(None, fingerprint, base), version, detail
                )

    def _error_message(self, future: RunFuture) -> str:
        """A failed future's message, straight from its exception.

        Waiters can observe a future failed *before* its done
        callback records the message in ``_errors``, so the future
        itself is the authoritative source and the registry only a
        fallback (for runs whose future is long gone).
        """
        error = future.exception(timeout=0)
        if error is not None:
            return f"{type(error).__name__}: {error}"
        with self._lock:
            return self._errors.get(future.fingerprint, "run failed")

    def _line_for(
        self, future: RunFuture, version: int = 1, detail: str = "full"
    ) -> bytes:
        if future.exception(timeout=0) is None:
            return self._artifact_bytes(future, version, detail) + b"\n"
        return (
            _dumps(
                encode_error(
                    self._error_message(future),
                    fingerprint=future.fingerprint,
                    status=500,
                    wire_version=version,
                )
            )
            + b"\n"
        )

    def _load(self) -> tuple[int, int]:
        """Current ``(inflight, queue_depth)``.

        ``inflight`` counts runs executing or queued daemon-side (the
        registry and the orchestrator's dedup table can each lead
        during handoff, so take the max); ``queue_depth`` is the part
        that cannot start until an executor slot frees.
        """
        with self._lock:
            inflight = len(self._futures)
        inflight = max(inflight, self.orchestrator.inflight_count())
        return inflight, max(0, inflight - max(self.orchestrator.jobs, 1))

    def health(self) -> dict:
        """The ``GET /healthz`` payload: liveness plus load and identity."""
        inflight, queue_depth = self._load()
        return encode_health(
            self.daemon_id,
            self.orchestrator.jobs,
            inflight=inflight,
            queue_depth=queue_depth,
            workload_cache=self.orchestrator.workload_cache_stats(),
            engine_modes=self._engine_mode_counts(),
        )

    def _engine_mode_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self.engine_modes)

    def stats(self) -> dict:
        """The ``/stats`` payload."""
        with self._lock:
            counters = dict(self.counters)
            wire = dict(self.wire_counters)
            campaigns = dict(self.campaigns)
            latencies = sorted(self._latencies)
        wire["request_p50_ms"] = _percentile_ms(latencies, 50.0)
        wire["request_p99_ms"] = _percentile_ms(latencies, 99.0)
        inflight, queue_depth = self._load()
        return {
            "wire_version": WIRE_VERSION,
            "supported_wire_versions": list(SUPPORTED_WIRE_VERSIONS),
            "kind": "stats",
            "daemon_id": self.daemon_id,
            "uptime_s": time.time() - self._started,
            "jobs": self.orchestrator.jobs,
            "inflight": inflight,
            "queue_depth": queue_depth,
            "store": self.orchestrator.store.stats(),
            "wire": wire,
            "workload_cache": self.orchestrator.workload_cache_stats(),
            "engine_modes": self._engine_mode_counts(),
            "campaigns": campaigns,
            **counters,
        }


def _dumps(payload: dict) -> bytes:
    return json.dumps(payload).encode()


def _percentile_ms(sorted_latencies: list[float], percentile: float) -> float:
    """Nearest-rank percentile of a sorted seconds list, in ms."""
    if not sorted_latencies:
        return 0.0
    rank = min(
        len(sorted_latencies) - 1,
        int(percentile / 100.0 * len(sorted_latencies)),
    )
    return sorted_latencies[rank] * 1000.0


def _as_member(body: bytes, used: str, encoding: str) -> bytes:
    """One reply line for a batch body in the negotiated encoding.

    Identity bodies (no trailing newline) get one appended; under gzip
    a pre-compressed body passes through verbatim (its member already
    ends in a newline) and identity lines are wrapped into members.
    """
    if encoding != "gzip":
        return body + b"\n"
    if used == "gzip":
        return body
    return gzip.compress(body + b"\n", compresslevel=_GZIP_LEVEL, mtime=0)


def _gunzip_capped(data: bytes, cap: int) -> bytes | None:
    """Decompress one gzip member, refusing to exceed ``cap`` bytes.

    Returns None when the decompressed size would exceed the cap (the
    compression-bomb guard); raises ``WireError`` on corrupt input.
    """
    decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)
    try:
        payload = decompressor.decompress(data, cap + 1)
    except zlib.error as error:
        raise WireError(f"undecodable gzip body: {error}") from None
    if len(payload) > cap:
        return None
    return payload


def _chain(source: Future, target: Future) -> None:
    """Propagate ``source``'s outcome into ``target`` when it lands."""

    def _copy(done: Future) -> None:
        error = done.exception()
        if error is not None:
            target.set_exception(error)
        else:
            target.set_result(done.result())

    source.add_done_callback(_copy)


def _build_handler(daemon: ExperimentDaemon) -> type:
    """The request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        """Routes HTTP requests onto the daemon's handle_* methods."""

        protocol_version = "HTTP/1.1"
        server_version = "repro-service"
        # Responses go out as two sends (headers, body); with Nagle on,
        # the second waits out the peer's delayed ACK (~40 ms per
        # exchange), capping keep-alive throughput at ~25 req/s.
        disable_nagle_algorithm = True
        # BaseHTTPRequestHandler applies this as the socket timeout: a
        # keep-alive connection idle past it raises in the request-line
        # read and the handler loop closes it.
        timeout = daemon.idle_timeout_s

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # endpoint traffic is metered via /stats, not stderr

        # -- plumbing ------------------------------------------------------

        def _wants_gzip(self) -> bool:
            accept = self.headers.get("Accept-Encoding", "")
            return "gzip" in accept.lower()

        def _reply(
            self,
            status: int,
            body: bytes,
            encoding: str = "identity",
            close: bool = False,
        ) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                if encoding == "gzip":
                    self.send_header("Content-Encoding", "gzip")
                if close:
                    self.send_header("Connection", "close")
                    self.close_connection = True
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                daemon._record_sent(len(body), encoding)
            except (BrokenPipeError, ConnectionResetError, TimeoutError):
                self.close_connection = True

        def _reply_stream(self, lines) -> None:
            sent = 0
            try:
                self.send_response(200)
                self.send_header("Content-Type", "application/jsonl")
                self.send_header("Connection", "close")
                self.end_headers()
                for line in lines:
                    self.wfile.write(line)
                    self.wfile.flush()
                    sent += len(line)
            except (BrokenPipeError, ConnectionResetError, TimeoutError):
                pass
            daemon._record_sent(sent, "identity")
            self.close_connection = True

        def _read_body(self) -> dict | None:
            """The POST body as parsed JSON; None = already replied.

            Enforces the size cap *before* reading (413 closes the
            connection: the unread body would desync keep-alive
            framing) and transparently inflates gzip request bodies,
            capping their decompressed size too.
            """
            length_header = self.headers.get("Content-Length")
            if length_header is None:
                self._reply(
                    411,
                    _dumps(
                        encode_error(
                            "Content-Length required", status=411
                        )
                    ),
                    close=True,
                )
                return None
            try:
                length = int(length_header)
            except ValueError:
                self._reply(
                    400,
                    _dumps(
                        encode_error("malformed Content-Length", status=400)
                    ),
                    close=True,
                )
                return None
            if length > daemon.max_body_bytes:
                self._reply(
                    413,
                    _dumps(
                        encode_error(
                            f"request body of {length} bytes exceeds "
                            f"the {daemon.max_body_bytes}-byte cap",
                            status=413,
                        )
                    ),
                    close=True,
                )
                return None
            raw = self.rfile.read(length)
            daemon._count_wire("bytes_in", len(raw))
            if self.headers.get("Content-Encoding", "").lower() == "gzip":
                try:
                    inflated = _gunzip_capped(raw, daemon.max_body_bytes)
                except WireError as error:
                    self._reply(
                        400, _dumps(encode_error(str(error), status=400))
                    )
                    return None
                if inflated is None:
                    self._reply(
                        413,
                        _dumps(
                            encode_error(
                                "request body inflates past the "
                                f"{daemon.max_body_bytes}-byte cap",
                                status=413,
                            )
                        ),
                        close=True,
                    )
                    return None
                raw = inflated
            try:
                return json.loads(raw)
            except (ValueError, json.JSONDecodeError):
                self._reply(
                    400,
                    _dumps(encode_error("malformed JSON body", status=400)),
                )
                return None

        # -- routes --------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            self._route(self._handle_get)

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            self._route(self._handle_post)

        def _route(self, handle) -> None:
            if daemon._killed:
                # A killed member must look dead, not politely refuse:
                # drop the keep-alive connection without a reply so
                # clients observe a connection-level failure.
                self.close_connection = True
                return
            daemon._count("requests")
            started = time.perf_counter()
            try:
                handle()
            finally:
                daemon._record_latency(time.perf_counter() - started)

        def _handle_get(self) -> None:
            parts = urlsplit(self.path)
            query = parse_qs(parts.query)
            wait = _float_param(query, "wait", 0.0)
            path = parts.path.rstrip("/")
            if path == "/healthz":
                self._reply(200, _dumps(daemon.health()))
                return
            if path == "/stats":
                self._reply(200, _dumps(daemon.stats()))
                return
            if path == "/runs" or path.startswith("/runs/"):
                version = _int_param(query, "v", 1)
                if version not in SUPPORTED_WIRE_VERSIONS:
                    self._reply(
                        400,
                        _dumps(
                            encode_error(
                                f"unsupported wire version {version}",
                                status=400,
                            )
                        ),
                    )
                    return
                try:
                    detail = check_detail(
                        query.get("detail", [None])[0]
                    )
                except WireError as error:
                    self._reply(
                        400, _dumps(encode_error(str(error), status=400))
                    )
                    return
                if version < 2:
                    detail = "full"
                if path == "/runs":
                    fingerprints = query.get("fp", [])
                    if not fingerprints:
                        self._reply(
                            400,
                            _dumps(
                                encode_error(
                                    "streaming GET /runs needs >=1 "
                                    "fp= param",
                                    status=400,
                                )
                            ),
                        )
                        return
                    self._reply_stream(
                        daemon.handle_stream(
                            fingerprints, wait, version, detail
                        )
                    )
                    return
                fingerprint = path[len("/runs/") :]
                encoding = "gzip" if self._wants_gzip() else "identity"
                status, body, used = daemon.handle_poll(
                    fingerprint, wait, version, detail, encoding
                )
                if status == 0:  # killed mid-wait; drop the connection
                    self.close_connection = True
                    return
                self._reply(status, body, encoding=used)
                return
            self._reply(
                404, _dumps(encode_error("no such endpoint", status=404))
            )

        def _handle_post(self) -> None:
            path = urlsplit(self.path).path.rstrip("/")
            if path not in ("/runs", "/runs/batch", "/runs/poll"):
                self._reply(
                    404, _dumps(encode_error("no such endpoint", status=404))
                )
                return
            payload = self._read_body()
            if payload is None:
                return
            encoding = "gzip" if self._wants_gzip() else "identity"
            campaign = self.headers.get("X-Repro-Campaign")
            if path == "/runs":
                status, body, used = daemon.handle_submit(
                    payload, encoding=encoding, campaign=campaign
                )
                self._reply(status, body, encoding=used)
            elif path == "/runs/batch":
                status, body, used = daemon.handle_batch(
                    payload, encoding, campaign=campaign
                )
                self._reply(status, body, encoding=used)
            else:
                try:
                    fingerprints, wait_s, detail = decode_poll(payload)
                except WireError as error:
                    self._reply(
                        400, _dumps(encode_error(str(error), status=400))
                    )
                    return
                if wait_s > 0:
                    # Streamed settlement in completion order; identity
                    # by design (see handle_stream).
                    self._reply_stream(
                        daemon.handle_stream(
                            fingerprints, wait_s, WIRE_VERSION, detail
                        )
                    )
                    return
                status, body, used = daemon.handle_poll_batch(
                    fingerprints, detail, encoding
                )
                self._reply(status, body, encoding=used)

    return Handler


def _float_param(query: dict, name: str, default: float) -> float:
    try:
        return float(query.get(name, [default])[0])
    except (TypeError, ValueError):
        return default


def _int_param(query: dict, name: str, default: int) -> int:
    try:
        return int(query.get(name, [default])[0])
    except (TypeError, ValueError):
        return default
