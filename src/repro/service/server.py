"""The experiment daemon: a threaded stdlib-HTTP front-end.

``repro serve`` runs one :class:`ExperimentDaemon` around one
long-lived :class:`~repro.experiments.orchestrator.Orchestrator` (and
therefore one worker pool and one segment-capable result store); any
number of :class:`~repro.service.client.ServiceClient` processes share
it.  Endpoints:

``POST /runs``
    Submit one encoded :class:`RunRequest`.  Store hits answer ``200``
    with the artifact immediately; misses answer ``202`` (pending) and
    enter the orchestrator's in-flight dedup table, so overlapping
    submissions of one fingerprint -- same client or different clients
    -- execute exactly once.
``GET /runs/<fingerprint>[?wait=S]``
    Poll one run.  ``wait`` long-polls up to S seconds (capped at
    :data:`MAX_WAIT_S`) for completion; replies ``200`` artifact,
    ``202`` pending, ``404`` unknown, or ``500`` with the run's error.
``GET /runs?fp=...&fp=...[&wait=S]``
    Stream the named runs back as JSON lines in *completion* order --
    the wire mirror of
    :meth:`~repro.experiments.orchestrator.Orchestrator.as_resolved`.
    Runs still pending when ``wait`` expires stream a ``pending``
    line; the client re-polls.
``GET /healthz`` and ``GET /stats``
    Liveness, and counters (hits/misses/computed/in-flight/errors plus
    the store's own counters).

Dedup and the warm fast path
----------------------------

Fingerprints are self-certifying SHA-256 content hashes, so the warm
path trusts the one declared in the envelope: if it already resolves
(response cache, store), the daemon replies without decoding the full
request -- a client that declares a wrong fingerprint only mis-serves
itself.  Misses take the strict path: the request is decoded, its
fingerprint recomputed and verified (``409`` on mismatch), and only
then does it enter the shared orchestrator core
(:meth:`~repro.experiments.orchestrator.Orchestrator.resolve`).

Handlers run on per-connection daemon threads
(``ThreadingHTTPServer``); waits are capped at :data:`MAX_WAIT_S` and
every write failure (client gone mid-poll) is swallowed, so an
abandoned connection occupies one thread for at most its ``wait`` and
never wedges the daemon or the worker that owns the run.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator
from urllib.parse import parse_qs, urlsplit

from repro.experiments.orchestrator import Orchestrator, RunFuture
from repro.service.protocol import (
    FingerprintMismatch,
    WIRE_VERSION,
    WireError,
    decode_request,
    encode_artifact,
    encode_error,
    encode_pending,
)

__all__ = ["ExperimentDaemon", "MAX_WAIT_S"]

#: Hard cap on a single long-poll/stream wait (seconds).
MAX_WAIT_S = 60.0

#: Completed artifacts kept pre-encoded for the warm fast path.
_RESPONSE_CACHE_SIZE = 1024

#: Failed-run messages retained for polls (bounded; a daemon lives
#: for weeks and failures must not accumulate without limit).
_ERROR_CACHE_SIZE = 1024


class ExperimentDaemon:
    """One orchestrator served over HTTP to many clients.

    Parameters
    ----------
    orchestrator:
        The shared execution backend (its ``jobs`` and store root are
        the daemon's capacity and persistence).
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.orchestrator = orchestrator
        self._futures: dict[str, RunFuture] = {}
        self._errors: OrderedDict[str, str] = OrderedDict()
        self._responses: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self._started = time.time()
        self.counters = {
            "requests": 0,
            "submitted": 0,
            "hits": 0,
            "computed": 0,
            "errors": 0,
        }
        handler = _build_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._serial: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients should connect to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ExperimentDaemon":
        """Serve in a background thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-service",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`/interrupt."""
        self._server.serve_forever()

    def _serial_runner(self) -> ThreadPoolExecutor:
        """Capacity-1 executor for a serial orchestrator's launches."""
        if self._serial is None:
            self._serial = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serial-run"
            )
        return self._serial

    def close(self) -> None:
        """Stop serving and shut the orchestrator's pool down."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._serial is not None:
            self._serial.shutdown(wait=True)
            self._serial = None
        self.orchestrator.close()

    def __enter__(self) -> "ExperimentDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bookkeeping -------------------------------------------------------

    def _count(self, key: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[key] += delta

    def _cache_response(self, fingerprint: str, payload: bytes) -> None:
        with self._lock:
            self._responses[fingerprint] = payload
            self._responses.move_to_end(fingerprint)
            while len(self._responses) > _RESPONSE_CACHE_SIZE:
                self._responses.popitem(last=False)

    def _cached_response(self, fingerprint: str) -> bytes | None:
        with self._lock:
            payload = self._responses.get(fingerprint)
            if payload is not None:
                self._responses.move_to_end(fingerprint)
            return payload

    def _artifact_bytes(self, future: RunFuture) -> bytes:
        """Encode a done future's artifact, caching the bytes."""
        artifact = future.result(timeout=0)
        payload = json.dumps(encode_artifact(artifact)).encode()
        self._cache_response(future.fingerprint, payload)
        return payload

    def _finish(self, fingerprint: str, base: Future) -> None:
        """Done callback of every miss: counters, errors, registry."""
        error = base.exception()
        if error is not None:
            with self._lock:
                self._errors[fingerprint] = (
                    f"{type(error).__name__}: {error}"
                )
                self._errors.move_to_end(fingerprint)
                while len(self._errors) > _ERROR_CACHE_SIZE:
                    self._errors.popitem(last=False)
            self._count("errors")
        else:
            self._count("computed")
            with self._lock:
                # A successful recompute supersedes any stale failure.
                self._errors.pop(fingerprint, None)
        with self._lock:
            self._futures.pop(fingerprint, None)

    # -- request handling (HTTP-free; the handler is a thin shim) ----------

    def handle_submit(self, payload: dict) -> tuple[int, bytes]:
        """``POST /runs``: returns ``(status, body bytes)``."""
        self._count("submitted")
        if not isinstance(payload, dict) or payload.get(
            "wire_version"
        ) != WIRE_VERSION or payload.get("kind") != "run_request":
            # Checked before the warm fast path too: a mismatched peer
            # must be refused deterministically, not served whenever
            # its fingerprint happens to be cached.
            return 400, _dumps(
                encode_error(
                    "expected a run_request payload at wire version "
                    f"{WIRE_VERSION}",
                    status=400,
                )
            )
        declared = payload.get("fingerprint")
        use_store = bool(payload.get("use_store", True))
        if use_store and isinstance(declared, str):
            cached = self._cached_response(declared)
            if cached is not None:
                self._count("hits")
                return 200, cached
        try:
            request, fingerprint, use_store = decode_request(payload)
        except FingerprintMismatch as error:
            return 409, _dumps(encode_error(str(error), status=409))
        except WireError as error:
            return 400, _dumps(encode_error(str(error), status=400))
        if use_store:
            hit = self.orchestrator.lookup(request, fingerprint)
            if hit is not None:
                self._count("hits")
                return 200, self._artifact_bytes(hit)
        # Miss: claim the fingerprint in the daemon registry *before*
        # launching, so overlapping submissions -- same client or a
        # different one, pooled or serial -- park on one run.  (The
        # orchestrator pool dedups too, but only for jobs > 1; the
        # registry also backs /runs polls and error reporting.)
        with self._lock:
            existing = self._futures.get(fingerprint)
            if existing is None:
                wrapper: Future = Future()
                shared = RunFuture(request, fingerprint, wrapper)
                self._futures[fingerprint] = shared
                wrapper.add_done_callback(
                    lambda base, fp=fingerprint: self._finish(fp, base)
                )
        if existing is not None:
            return 202, _dumps(encode_pending(fingerprint))
        # A serial orchestrator executes launches inline; running that
        # on the handler thread would stall the POST for the whole
        # simulation (longer than any client timeout), so serial
        # launches move to a capacity-1 runner thread.  Misses answer
        # 202 unconditionally -- even a launch that fails immediately
        # reports through poll/stream, keeping the wire contract
        # deterministic (200 = store hit, 202 = accepted).
        if self.orchestrator.jobs == 1:
            def _serial_launch() -> None:
                try:
                    done = self.orchestrator.launch(request, fingerprint)
                except Exception as error:
                    wrapper.set_exception(error)
                else:
                    _chain(done._future, wrapper)

            self._serial_runner().submit(_serial_launch)
        else:
            try:
                launched = self.orchestrator.launch(request, fingerprint)
            except Exception as error:
                # e.g. a broken/closed worker pool: the claimed
                # registry entry must still resolve, or this
                # fingerprint would answer 202 forever.
                wrapper.set_exception(error)
            else:
                _chain(launched._future, wrapper)
        return 202, _dumps(encode_pending(fingerprint))

    def _lookup(self, fingerprint: str) -> RunFuture | None:
        """A future for a fingerprint: in-flight, else store-resolved."""
        with self._lock:
            future = self._futures.get(fingerprint)
        if future is not None:
            return future
        hit = self.orchestrator.lookup(None, fingerprint)
        return hit

    def handle_poll(
        self, fingerprint: str, wait_s: float
    ) -> tuple[int, bytes]:
        """``GET /runs/<fingerprint>``: returns ``(status, body)``."""
        deadline = time.monotonic() + min(max(wait_s, 0.0), MAX_WAIT_S)
        while True:
            future = self._lookup(fingerprint)
            if future is not None and future.done():
                if future.exception(timeout=0) is None:
                    return 200, self._artifact_bytes(future)
                return 500, _dumps(
                    encode_error(
                        self._error_message(future),
                        fingerprint=fingerprint,
                        status=500,
                    )
                )
            if future is None:
                with self._lock:
                    message = self._errors.get(fingerprint)
                if message is not None:
                    return 500, _dumps(
                        encode_error(
                            message, fingerprint=fingerprint, status=500
                        )
                    )
                return 404, _dumps(
                    encode_error(
                        "unknown fingerprint (not stored, not in flight)",
                        fingerprint=fingerprint,
                        status=404,
                    )
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return 202, _dumps(encode_pending(fingerprint))
            try:
                future.result(timeout=remaining)
            except FutureTimeoutError:
                continue
            except Exception:  # resolved to an error; loop reports it
                continue

    def handle_stream(
        self, fingerprints: list[str], wait_s: float
    ) -> Iterator[bytes]:
        """``GET /runs?fp=...``: JSON lines in completion order."""
        deadline = time.monotonic() + min(max(wait_s, 0.0), MAX_WAIT_S)
        pending: dict[Future, str] = {}
        for fingerprint in dict.fromkeys(fingerprints):
            future = self._lookup(fingerprint)
            if future is None:
                with self._lock:
                    message = self._errors.get(fingerprint)
                if message is not None:
                    yield _dumps(
                        encode_error(
                            message, fingerprint=fingerprint, status=500
                        )
                    ) + b"\n"
                    continue
                yield _dumps(
                    encode_error(
                        "unknown fingerprint (not stored, not in flight)",
                        fingerprint=fingerprint,
                        status=404,
                    )
                ) + b"\n"
            elif future.done():
                yield self._line_for(future)
            else:
                pending[future._future] = fingerprint
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for fingerprint in pending.values():
                    yield _dumps(encode_pending(fingerprint)) + b"\n"
                return
            done_now, _ = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            for base in done_now:
                fingerprint = pending.pop(base)
                yield self._line_for(
                    RunFuture(None, fingerprint, base)
                )

    def _error_message(self, future: RunFuture) -> str:
        """A failed future's message, straight from its exception.

        Waiters can observe a future failed *before* its done
        callback records the message in ``_errors``, so the future
        itself is the authoritative source and the registry only a
        fallback (for runs whose future is long gone).
        """
        error = future.exception(timeout=0)
        if error is not None:
            return f"{type(error).__name__}: {error}"
        with self._lock:
            return self._errors.get(future.fingerprint, "run failed")

    def _line_for(self, future: RunFuture) -> bytes:
        if future.exception(timeout=0) is None:
            return self._artifact_bytes(future) + b"\n"
        return (
            _dumps(
                encode_error(
                    self._error_message(future),
                    fingerprint=future.fingerprint,
                    status=500,
                )
            )
            + b"\n"
        )

    def stats(self) -> dict:
        """The ``/stats`` payload."""
        with self._lock:
            counters = dict(self.counters)
            inflight = len(self._futures)
        return {
            "wire_version": WIRE_VERSION,
            "kind": "stats",
            "uptime_s": time.time() - self._started,
            "jobs": self.orchestrator.jobs,
            "inflight": max(inflight, self.orchestrator.inflight_count()),
            "store": self.orchestrator.store.stats(),
            **counters,
        }


def _dumps(payload: dict) -> bytes:
    return json.dumps(payload).encode()


def _chain(source: Future, target: Future) -> None:
    """Propagate ``source``'s outcome into ``target`` when it lands."""

    def _copy(done: Future) -> None:
        error = done.exception()
        if error is not None:
            target.set_exception(error)
        else:
            target.set_result(done.result())

    source.add_done_callback(_copy)


def _build_handler(daemon: ExperimentDaemon) -> type:
    """The request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        """Routes HTTP requests onto the daemon's handle_* methods."""

        protocol_version = "HTTP/1.1"
        server_version = "repro-service"
        # Responses go out as two sends (headers, body); with Nagle on,
        # the second waits out the peer's delayed ACK (~40 ms per
        # exchange), capping keep-alive throughput at ~25 req/s.
        disable_nagle_algorithm = True

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # endpoint traffic is metered via /stats, not stderr

        # -- plumbing ------------------------------------------------------

        def _reply(self, status: int, body: bytes) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True

        def _reply_stream(self, lines) -> None:
            try:
                self.send_response(200)
                self.send_header("Content-Type", "application/jsonl")
                self.send_header("Connection", "close")
                self.end_headers()
                for line in lines:
                    self.wfile.write(line)
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass
            self.close_connection = True

        # -- routes --------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            daemon._count("requests")
            parts = urlsplit(self.path)
            query = parse_qs(parts.query)
            wait = _float_param(query, "wait", 0.0)
            path = parts.path.rstrip("/")
            if path == "/healthz":
                self._reply(
                    200,
                    _dumps(
                        {
                            "wire_version": WIRE_VERSION,
                            "kind": "health",
                            "status": "ok",
                        }
                    ),
                )
            elif path == "/stats":
                self._reply(200, _dumps(daemon.stats()))
            elif path == "/runs":
                fingerprints = query.get("fp", [])
                if not fingerprints:
                    self._reply(
                        400,
                        _dumps(
                            encode_error(
                                "streaming GET /runs needs >=1 fp= param",
                                status=400,
                            )
                        ),
                    )
                    return
                self._reply_stream(daemon.handle_stream(fingerprints, wait))
            elif path.startswith("/runs/"):
                fingerprint = path[len("/runs/") :]
                status, body = daemon.handle_poll(fingerprint, wait)
                self._reply(status, body)
            else:
                self._reply(
                    404, _dumps(encode_error("no such endpoint", status=404))
                )

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            daemon._count("requests")
            path = urlsplit(self.path).path.rstrip("/")
            if path != "/runs":
                self._reply(
                    404, _dumps(encode_error("no such endpoint", status=404))
                )
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length))
            except (ValueError, json.JSONDecodeError):
                self._reply(
                    400,
                    _dumps(encode_error("malformed JSON body", status=400)),
                )
                return
            status, body = daemon.handle_submit(payload)
            self._reply(status, body)

    return Handler


def _float_param(query: dict, name: str, default: float) -> float:
    try:
        return float(query.get(name, [default])[0])
    except (TypeError, ValueError):
        return default
