"""Drop-in orchestrator client for a remote experiment daemon.

:class:`ServiceClient` implements the
:class:`~repro.experiments.orchestrator.Orchestrator` consumer surface
-- ``submit`` / ``submit_many`` / ``as_done`` / ``as_resolved`` /
``run`` / ``run_many`` / ``with_jobs`` -- against an
:class:`~repro.service.server.ExperimentDaemon` URL, so every analysis
that takes an ``orchestrator=`` parameter (``runner``, ``scenarios``,
``pareto``, ``sensitivity``, ``lower_bound``) runs remotely with zero
changes to its logic: the CLI's ``--service URL`` path is exactly
``orchestrator=ServiceClient(url)``.

Resolution model
----------------

``submit`` POSTs the encoded request: a ``200`` resolves the returned
future immediately (store hit or serial run); a ``202`` leaves it
pending.  ``submit_many`` against a v2 daemon settles warm work in two
chunked phases -- a fingerprint-only ``POST /runs/poll`` (warm hits
resolve without uploading encoded bodies at all), then ``POST
/runs/batch`` for the remainder -- so a 1k-run sweep costs ~tens of
HTTP round trips instead of ~1k.  Pending futures then resolve two
ways, whichever happens first:

* :meth:`as_done` / :meth:`as_resolved` multiplex settlement over
  batch-aware long-polls (``POST /runs/poll``, falling back to the v1
  streaming GET) and resolve futures as artifact lines arrive in
  completion order;
* :meth:`RunFuture.result` on an individual pending future falls back
  to long-polling ``GET /runs/<fingerprint>``.

Both paths funnel through one idempotent resolver, so a stream and a
poll racing on the same future are benign.

Wire negotiation
----------------

The client speaks wire v2 (gzip response bodies via
``Accept-Encoding``, gzip request bodies, batch endpoints, ``detail``
projections) but interoperates with v1 daemons: ``ping`` reads the
daemon's advertised ``supported_wire_versions`` (absent on v1 ->
``[1]``) and pins the common version; an unnegotiated ``submit``
refused with a version-mismatch error downgrades once and retries.
Against a v1 daemon the client behaves exactly like its v1 self:
per-request POSTs, identity encoding, full detail.

``detail="headline"`` artifacts decode to
:class:`~repro.sim.results.HeadlineResult` projections that lazily
fetch the full ledger over the wire only when a consumer asks for
something beyond the headline block.

Connection-level failures raise :class:`ServiceUnavailable` (a
:class:`ServiceError` subclass; the CLI maps both to a clean nonzero
exit, and the fleet router uses the distinction to fail members over
-- an unreachable daemon is rerouted around, a protocol rejection is
not); a run that *failed on the daemon* raises a
:class:`ServiceRunError` carrying the daemon-side message.  A request
that dies on a stale keep-alive socket (the daemon closes idle
connections server-side) is retried once on a fresh connection before
any error surfaces.

The HTTP plumbing lives in :class:`HttpTransport` -- per-thread
keep-alive connections, the stale-socket retry, gzip negotiation and
JSONL parsing -- factored out of the client so fleet-level code
(:mod:`repro.service.fleet`) composes one transport per member
without duplicating the orchestrator-surface semantics.
"""

from __future__ import annotations

import gzip
import http.client
import json
import os
import socket
import threading
import time
from concurrent.futures import Future
from typing import Callable, Iterable, Iterator, Sequence
from urllib.parse import quote, urlencode, urlsplit

from repro.experiments.orchestrator import (
    RunArtifact,
    RunFuture,
    RunRequest,
)
from repro.service.protocol import (
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WireError,
    check_detail,
    decode_artifact,
    encode_batch,
    encode_poll,
    encode_request,
)
from repro.sim.results import RunResult

__all__ = [
    "HttpTransport",
    "ServiceClient",
    "ServiceError",
    "ServiceRunError",
    "ServiceUnavailable",
]

#: Seconds of server-side blocking requested per long-poll/stream call
#: (constructor-tunable via ``poll_wait_s``; fleet failover tests use
#: short waits so a dead member is noticed quickly).
_POLL_WAIT_S = 30.0

#: Fingerprints per ``POST /runs/poll`` chunk (fingerprint-only lines
#: are ~100 bytes each, so 512 keeps bodies well under a TCP window).
#: Default only: tunable per client (``poll_chunk=``) or process
#: (``$REPRO_SERVICE_POLL_CHUNK``) -- fleet fan-out multiplies
#: per-daemon chunk counts, and the sweet spot shifts with member
#: count.
_POLL_CHUNK = 512

#: Encoded requests per ``POST /runs/batch`` chunk.  Entries carry the
#: full encoded request (for recorded packs, the whole matrix), so
#: batches chunk far smaller than polls.  Default for ``batch_chunk=``
#: / ``$REPRO_SERVICE_BATCH_CHUNK``.
_BATCH_CHUNK = 64


def _tunable(value, env_var: str, default: int) -> int:
    """A constructor override, else the env var, else the default."""
    if value is not None:
        return max(1, int(value))
    raw = os.environ.get(env_var)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return default


#: Request bodies below this stay identity even when compression is
#: on: gzip's header overhead and CPU beat nothing out of tiny JSON.
_COMPRESS_MIN_BYTES = 1024

#: Exceptions that mean "the keep-alive socket went stale under us"
#: (e.g. the daemon's idle reaper closed it between requests); the
#: request is retried once on a fresh connection.
_STALE_SOCKET_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.IncompleteRead,
    BrokenPipeError,
    ConnectionResetError,
)


class ServiceError(ConnectionError):
    """The daemon is unreachable or answered outside the protocol."""


class ServiceUnavailable(ServiceError):
    """The daemon cannot be reached (or its reply was unreadable).

    Distinct from plain :class:`ServiceError` (a well-delivered
    protocol rejection: bad envelope, refused run) because the fleet
    router treats the two differently -- an unreachable member is
    marked down and its pending work rerouted; a rejection is
    terminal and surfaces to the caller.
    """


class ServiceRunError(RuntimeError):
    """A run failed on the daemon; carries the daemon-side message."""


class HttpTransport:
    """Per-thread keep-alive HTTP plumbing for one daemon.

    One instance per daemon URL; each calling thread gets its own
    keep-alive connection (``http.client`` connections are not
    thread-safe), created lazily with TCP_NODELAY and torn down via
    :meth:`close`.  Handles the stale-socket retry, request/response
    gzip and JSONL parsing; everything protocol-level (envelopes,
    negotiation, futures) stays in :class:`ServiceClient`.

    ``gzip_requests`` starts False and is flipped by the owner once
    the peer is known to speak wire v2 (v1 daemons do not inflate
    request bodies).
    """

    def __init__(
        self, host: str, port: int, timeout_s: float, compress: bool
    ) -> None:
        self.host = host
        self.port = port
        self.url = f"http://{host}:{port}"
        self.timeout_s = timeout_s
        self.compress = compress
        self.gzip_requests = False
        # Merged into every request's headers; the campaign driver
        # plants ``X-Repro-Campaign`` here so the daemon can count
        # per-campaign submissions (old daemons ignore unknown
        # headers, so this is wire-compatible both ways).
        self.extra_headers: dict[str, str] = {}
        self._local = threading.local()

    def _connection(self, timeout_s: float) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s
            )
            connection.connect()
            # Requests also go out as two sends (headers, body); see
            # the server handler's disable_nagle_algorithm note.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
        else:
            connection.timeout = timeout_s
            if connection.sock is not None:
                connection.sock.settimeout(timeout_s)
        return connection

    def close(self) -> None:
        """Drop the calling thread's keep-alive connection."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout_s: float | None = None,
        stream: bool = False,
        jsonl: bool = False,
    ):
        """One HTTP exchange; returns ``(status, response)``.

        Keep-alive connections are reused per thread; a request that
        dies on a stale socket is retried once on a fresh one.
        Returns the live response object when ``stream`` (caller
        reads/closes); a ``(status, [payload, ...])`` list of parsed
        JSON lines when ``jsonl``; else ``(status, parsed payload)``.
        Response bodies arriving ``Content-Encoding: gzip`` are
        inflated transparently; request bodies above
        :data:`_COMPRESS_MIN_BYTES` are gzipped once ``gzip_requests``
        is on.  Connection-level failures raise
        :class:`ServiceUnavailable`.
        """
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        headers = {"Content-Type": "application/json", **self.extra_headers}
        if self.compress:
            headers["Accept-Encoding"] = "gzip"
            if (
                body is not None
                and len(body) >= _COMPRESS_MIN_BYTES
                and self.gzip_requests
            ):
                body = gzip.compress(body, compresslevel=6)
                headers["Content-Encoding"] = "gzip"
        for attempt in (0, 1):
            try:
                connection = self._connection(timeout_s)
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                if stream:
                    return response.status, response
                raw = response.read()
                if response.getheader("Content-Encoding") == "gzip":
                    raw = gzip.decompress(raw)
                if response.will_close:
                    self.close()
                if jsonl:
                    return response.status, [
                        json.loads(line)
                        for line in raw.splitlines()
                        if line.strip()
                    ]
                return response.status, json.loads(raw)
            except (
                http.client.HTTPException,
                ConnectionError,
                TimeoutError,
                OSError,
                json.JSONDecodeError,
            ) as error:
                self.close()
                if attempt == 0 and isinstance(
                    error, _STALE_SOCKET_ERRORS
                ):
                    continue  # stale keep-alive socket; retry once
                raise ServiceUnavailable(
                    f"cannot reach experiment service at {self.url}: "
                    f"{type(error).__name__}: {error}"
                ) from None
        raise AssertionError("unreachable")


class ServiceClient:
    """Resolve run requests against a remote experiment daemon.

    Parameters
    ----------
    url:
        Daemon base URL, e.g. ``http://127.0.0.1:8123``.
    use_store:
        Default cache behavior forwarded with every submission
        (``False`` = the CLI's ``--no-cache``: the daemon resimulates
        but still records).
    progress:
        Optional ``callback(completed, total)`` fired per resolved run
        of a batch, exactly like the orchestrator's.
    timeout_s:
        Socket timeout for individual HTTP calls.  Calls that
        deliberately block server-side (long-poll, stream) add their
        ``wait`` on top.
    detail:
        Default artifact projection (``full`` or ``headline``) for
        submissions that do not name one.  Headline artifacts carry
        only the aggregate metrics block and lazily upgrade.
    compress:
        Negotiate gzip on responses (``Accept-Encoding``) and gzip
        large request bodies once the daemon is known to speak v2.
    poll_chunk / batch_chunk:
        Fingerprints per poll chunk / encoded requests per batch
        chunk.  ``None`` reads ``$REPRO_SERVICE_POLL_CHUNK`` /
        ``$REPRO_SERVICE_BATCH_CHUNK``, else the module defaults.
    poll_wait_s:
        Server-side blocking per long-poll/stream call.  Fleet
        routing lowers this so a dead member is noticed quickly.
    """

    def __init__(
        self,
        url: str,
        use_store: bool = True,
        progress: Callable[[int, int], None] | None = None,
        timeout_s: float = 10.0,
        detail: str = "full",
        compress: bool = True,
        poll_chunk: int | None = None,
        batch_chunk: int | None = None,
        poll_wait_s: float | None = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        try:
            port = parts.port
        except ValueError:
            port = None
            parts = None  # unparseable port
        if (
            parts is None
            or parts.scheme != "http"
            or not parts.hostname
            or parts.path.strip("/")
            or parts.query
        ):
            raise ServiceError(
                f"service URL must look like http://host:port, got {url!r}"
            )
        self.url = f"http://{parts.hostname}:{port or 80}"
        self.host = parts.hostname
        self.port = port or 80
        self.use_store = use_store
        self.progress = progress
        self.timeout_s = timeout_s
        self.detail = check_detail(detail)
        self.compress = compress
        self.poll_chunk = _tunable(
            poll_chunk, "REPRO_SERVICE_POLL_CHUNK", _POLL_CHUNK
        )
        self.batch_chunk = _tunable(
            batch_chunk, "REPRO_SERVICE_BATCH_CHUNK", _BATCH_CHUNK
        )
        self.poll_wait_s = (
            _POLL_WAIT_S if poll_wait_s is None else float(poll_wait_s)
        )
        self.jobs = 0  # execution capacity lives daemon-side
        self.wire_version = WIRE_VERSION
        self._negotiated = False
        self._transport = HttpTransport(
            self.host, self.port, timeout_s, compress
        )
        self._lock = threading.Lock()
        self._pending: dict[str, Future] = {}

    # -- HTTP plumbing -----------------------------------------------------

    def _drop_connection(self) -> None:
        self._transport.close()

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout_s: float | None = None,
        stream: bool = False,
        jsonl: bool = False,
    ):
        """One HTTP exchange via the transport; see its docstring."""
        return self._transport.request(
            method,
            path,
            body=body,
            timeout_s=timeout_s,
            stream=stream,
            jsonl=jsonl,
        )

    def ping(self) -> dict:
        """``GET /healthz``; raises :class:`ServiceUnavailable` if down.

        Also pins the wire version: the daemon advertises what it
        accepts (v1 daemons advertise nothing, meaning ``[1]``) and
        the client speaks the highest version both sides share.
        """
        status, payload = self._request("GET", "/healthz")
        if status != 200 or payload.get("status") != "ok":
            raise ServiceUnavailable(
                f"experiment service at {self.url} is unhealthy: "
                f"HTTP {status} {payload!r}"
            )
        self._adopt_wire_version(payload)
        return payload

    def _adopt_wire_version(self, payload: dict) -> None:
        advertised = payload.get("supported_wire_versions")
        if not isinstance(advertised, list) or not advertised:
            advertised = [payload.get("wire_version", 1)]
        common = [
            version
            for version in SUPPORTED_WIRE_VERSIONS
            if version in advertised
        ]
        if not common:
            raise ServiceError(
                f"no common wire version with {self.url}: daemon "
                f"accepts {advertised}, client {SUPPORTED_WIRE_VERSIONS}"
            )
        self.wire_version = max(common)
        self._negotiated = True
        self._transport.gzip_requests = self.wire_version >= 2

    def _ensure_negotiated(self) -> bool:
        """Pin the wire version if not yet done; True = v2 available."""
        if not self._negotiated:
            self.ping()
        return self.wire_version >= 2

    def stats(self) -> dict:
        """The daemon's ``/stats`` counters."""
        status, payload = self._request("GET", "/stats")
        if status != 200:
            raise ServiceError(f"/stats answered HTTP {status}")
        return payload

    # -- future resolution -------------------------------------------------

    def _full_fetcher(self, fingerprint: str) -> Callable[[], RunResult]:
        """The lazy headline->full upgrade: one ``detail=full`` GET."""

        def fetch() -> RunResult:
            status, payload = self._request(
                "GET",
                f"/runs/{quote(fingerprint)}?v={WIRE_VERSION}&detail=full",
            )
            if status == 200 and payload.get("kind") == "run_artifact":
                try:
                    return decode_artifact(payload).result
                except WireError as error:
                    raise ServiceError(
                        f"undecodable artifact from {self.url}: {error}"
                    ) from None
            raise ServiceError(
                f"cannot upgrade headline run {fingerprint[:12]}... to "
                f"full detail: HTTP {status}"
            )

        return fetch

    def _decode(self, fingerprint: str, payload: dict) -> RunArtifact:
        return decode_artifact(
            payload, fetch_full=self._full_fetcher(fingerprint)
        )

    def _settle(self, fingerprint: str, payload: dict) -> None:
        """Resolve the pending future for one terminal payload."""
        with self._lock:
            future = self._pending.pop(fingerprint, None)
        if future is None or future.done():
            return
        kind = payload.get("kind")
        if kind == "run_artifact":
            try:
                future.set_result(self._decode(fingerprint, payload))
            except WireError as error:
                future.set_exception(ServiceError(str(error)))
        else:
            future.set_exception(
                ServiceRunError(
                    payload.get("error", f"service answered {payload!r}")
                )
            )

    def _poll_path(self, fingerprint: str, detail: str) -> str:
        path = f"/runs/{quote(fingerprint)}"
        if self.wire_version >= 2:
            return f"{path}?v={self.wire_version}&detail={detail}"
        return path

    def _await(
        self,
        fingerprint: str,
        timeout: float | None,
        detail: str = "full",
    ) -> None:
        """Long-poll one fingerprint until it settles (or times out)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        path = self._poll_path(fingerprint, detail)
        joiner = "&" if "?" in path else "?"
        while True:
            with self._lock:
                if fingerprint not in self._pending:
                    return  # settled by a concurrent stream/poll
            wait_s = self.poll_wait_s
            if deadline is not None:
                wait_s = min(wait_s, deadline - time.monotonic())
                if wait_s <= 0:
                    raise TimeoutError(
                        f"run {fingerprint[:12]}... still pending"
                    )
            status, payload = self._request(
                "GET",
                f"{path}{joiner}wait={wait_s:.3f}",
                timeout_s=self.timeout_s + wait_s,
            )
            if status == 202:
                continue
            self._settle(fingerprint, payload)
            return

    # -- the orchestrator surface ------------------------------------------

    def with_jobs(self, jobs: int) -> "ServiceClient":
        """No-op for API compatibility: capacity is the daemon's."""
        return self

    def with_meta(self, extra: dict) -> "ServiceClient":
        """Orchestrator-surface meta stamping, service flavor.

        Store-document meta belongs to the daemon (per-request meta
        would complicate the dedup core), so only the campaign
        identity crosses the wire -- as an ``X-Repro-Campaign``
        header feeding the daemon's per-campaign ``/stats`` counters.
        Daemons predating the header ignore it.
        """
        campaign = extra.get("campaign")
        if campaign is not None:
            self._transport.extra_headers["X-Repro-Campaign"] = str(
                campaign
            )
        return self

    def lookup(self, request, fingerprint: str) -> RunFuture | None:
        """An already-resolved future for a daemon-store hit, else None.

        The warm-only read behind suite resume verification and the
        output stage: a non-blocking (``wait=0``) GET that never
        triggers execution.  Mirrors
        :meth:`repro.experiments.orchestrator.Orchestrator.lookup`.
        """
        self._ensure_negotiated()
        path = self._poll_path(fingerprint, "full")
        joiner = "&" if "?" in path else "?"
        status, payload = self._request("GET", f"{path}{joiner}wait=0")
        if status != 200 or payload.get("kind") != "run_artifact":
            return None
        try:
            artifact = self._decode(fingerprint, payload)
        except WireError:
            return None
        future: Future = Future()
        future.set_result(artifact)
        return RunFuture(request, fingerprint, future)

    def close(self) -> None:
        """Drop this thread's keep-alive connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_detail(self, detail: str | None) -> str:
        detail = self.detail if detail is None else check_detail(detail)
        if self.wire_version < 2:
            return "full"  # v1 daemons know only the full ledger
        return detail

    def submit(
        self,
        request: RunRequest,
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> RunFuture:
        """Submit one request to the daemon.

        Store hits (daemon-side) return an already-resolved future;
        misses return a pending future that resolves through the
        batch-aware poll (:meth:`as_done`) or an individual long-poll
        (:meth:`RunFuture.result`).
        """
        if use_store is None:
            use_store = self.use_store
        detail = self._resolve_detail(detail)
        fingerprint = request.fingerprint()
        with self._lock:
            pending = self._pending.get(fingerprint)
        if pending is not None and use_store:
            return _ClientRunFuture(
                self, request, fingerprint, pending, detail
            )
        if use_store:
            # Probe by fingerprint before shipping the full request:
            # a warm hit (or a run already in flight daemon-side)
            # resolves without uploading the encoded body at all --
            # which for recorded-trace packs is the whole matrix.
            probed = self._probe(request, fingerprint, detail)
            if probed is not None:
                return probed
        sent_version = self.wire_version
        body = json.dumps(
            encode_request(
                request,
                fingerprint,
                use_store=use_store,
                wire_version=sent_version,
                detail=detail,
            )
        ).encode()
        status, payload = self._request("POST", "/runs", body=body)
        if (
            status == 400
            and sent_version > 1
            and "wire version" in str(payload.get("error", ""))
        ):
            # An old daemon refused the v2 envelope: pin v1 and retry
            # (the one-shot downgrade mirror of ping()'s negotiation).
            # Keyed off the version this request was *sent* at, not
            # the current shared state: a thread whose envelope was
            # already encoded at v2 when a sibling pinned v1 lands
            # here *after* negotiation and must retry, not error.
            self.wire_version = 1
            self._negotiated = True
            self._transport.gzip_requests = False
            return self.submit(request, use_store=use_store)
        future: Future = Future()
        handle = _ClientRunFuture(self, request, fingerprint, future, detail)
        if status == 200 and payload.get("kind") == "run_artifact":
            try:
                future.set_result(self._decode(fingerprint, payload))
            except WireError as error:
                raise ServiceError(
                    f"undecodable artifact from {self.url}: {error}"
                ) from None
            return handle
        if status == 202 and payload.get("kind") == "pending":
            with self._lock:
                existing = self._pending.get(fingerprint)
                if existing is None:
                    self._pending[fingerprint] = future
                else:
                    future = existing
            return _ClientRunFuture(
                self, request, fingerprint, future, detail
            )
        message = payload.get("error", f"service answered HTTP {status}")
        if status >= 500:
            future.set_exception(ServiceRunError(message))
            return handle
        raise ServiceError(
            f"service rejected run {fingerprint[:12]}...: {message}"
        )

    def _probe(
        self, request: RunRequest, fingerprint: str, detail: str
    ) -> RunFuture | None:
        """Resolve a submission by fingerprint alone, if the daemon can.

        ``200`` yields a resolved future, ``202`` (already in flight)
        a registered pending one; anything else -- unknown, or a
        previously failed run, which a fresh submission should retry
        -- returns None and the caller POSTs the full request.
        (Query params are ignored by v1 daemons, so the probe needs
        no version negotiation: the reply envelope self-identifies.)
        """
        status, payload = self._request(
            "GET", self._poll_path(fingerprint, detail)
        )
        if status == 200 and payload.get("kind") == "run_artifact":
            future: Future = Future()
            try:
                future.set_result(self._decode(fingerprint, payload))
            except WireError as error:
                raise ServiceError(
                    f"undecodable artifact from {self.url}: {error}"
                ) from None
            return _ClientRunFuture(
                self, request, fingerprint, future, detail
            )
        if status == 202 and payload.get("kind") == "pending":
            with self._lock:
                future = self._pending.setdefault(fingerprint, Future())
            return _ClientRunFuture(
                self, request, fingerprint, future, detail
            )
        return None

    def submit_many(
        self,
        requests: Sequence[RunRequest],
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> list[RunFuture]:
        """Submit a batch; duplicate fingerprints share one future.

        Against a v2 daemon this costs ~``len(requests)/chunk`` round
        trips: one fingerprint-only poll pass settles warm hits
        without uploading encoded bodies, then the remainder ship in
        chunked ``POST /runs/batch`` calls.  Against a v1 daemon it
        falls back to the per-request :meth:`submit` loop.
        """
        if use_store is None:
            use_store = self.use_store
        if not self._ensure_negotiated():
            return self._submit_many_v1(requests, use_store)
        detail = self._resolve_detail(detail)
        order: list[str] = []
        handles: dict[str, RunFuture] = {}
        fresh: dict[str, RunRequest] = {}
        for request in requests:
            fingerprint = request.fingerprint()
            order.append(fingerprint)
            if fingerprint in handles or fingerprint in fresh:
                continue
            pending = None
            if use_store:
                with self._lock:
                    pending = self._pending.get(fingerprint)
            if pending is not None:
                handles[fingerprint] = _ClientRunFuture(
                    self, request, fingerprint, pending, detail
                )
            else:
                fresh[fingerprint] = request
        need_post = list(fresh)
        if use_store and fresh:
            # Phase 1: settle what the daemon already has by
            # fingerprint alone (the chunked mirror of _probe).
            need_post = []
            for fingerprint, payload in self._poll_batch(
                list(fresh), detail
            ):
                request = fresh.get(fingerprint)
                if request is None:
                    continue
                kind = payload.get("kind")
                if kind == "run_artifact":
                    handles[fingerprint] = self._resolved_handle(
                        request, fingerprint, payload, detail
                    )
                elif kind == "pending":
                    handles[fingerprint] = self._pending_handle(
                        request, fingerprint, detail
                    )
                else:
                    # Unknown (404) or previously failed (500): a
                    # fresh submission retries, like single submit.
                    need_post.append(fingerprint)
        # Phase 2: ship the rest in chunked batch POSTs.
        for chunk in _chunked(need_post, self.batch_chunk):
            entries = [
                encode_request(
                    fresh[fingerprint],
                    fingerprint,
                    use_store=use_store,
                    detail=detail,
                )
                for fingerprint in chunk
            ]
            body = json.dumps(encode_batch(entries, detail=detail)).encode()
            status, payloads = self._request(
                "POST", "/runs/batch", body=body, jsonl=True
            )
            if status != 200:
                message = (
                    payloads[0].get("error", "") if payloads else ""
                )
                raise ServiceError(
                    f"batch endpoint answered HTTP {status}: {message}"
                )
            for payload in payloads:
                fingerprint = payload.get("fingerprint", "")
                request = fresh.get(fingerprint)
                if request is None or fingerprint in handles:
                    continue
                kind = payload.get("kind")
                if kind == "run_artifact":
                    handles[fingerprint] = self._resolved_handle(
                        request, fingerprint, payload, detail
                    )
                elif kind == "pending":
                    handles[fingerprint] = self._pending_handle(
                        request, fingerprint, detail
                    )
                elif int(payload.get("status", 500)) >= 500:
                    failed: Future = Future()
                    failed.set_exception(
                        ServiceRunError(
                            payload.get("error", "run failed")
                        )
                    )
                    handles[fingerprint] = _ClientRunFuture(
                        self, request, fingerprint, failed, detail
                    )
                else:
                    raise ServiceError(
                        f"service rejected run {fingerprint[:12]}...: "
                        f"{payload.get('error', payload)!r}"
                    )
        # Entries a misbehaving daemon failed to answer resolve via
        # the individual long-poll rather than KeyError-ing here.
        for fingerprint in fresh:
            if fingerprint not in handles:
                handles[fingerprint] = self._pending_handle(
                    fresh[fingerprint], fingerprint, detail
                )
        return [handles[fingerprint] for fingerprint in order]

    def _submit_many_v1(
        self, requests: Sequence[RunRequest], use_store: bool
    ) -> list[RunFuture]:
        """The v1 path: one :meth:`submit` per distinct fingerprint."""
        futures: list[RunFuture] = []
        by_fingerprint: dict[str, RunFuture] = {}
        for request in requests:
            fingerprint = request.fingerprint()
            future = by_fingerprint.get(fingerprint)
            if future is None:
                future = self.submit(request, use_store=use_store)
                by_fingerprint[fingerprint] = future
            futures.append(future)
        return futures

    def _resolved_handle(
        self,
        request: RunRequest,
        fingerprint: str,
        payload: dict,
        detail: str,
    ) -> RunFuture:
        future: Future = Future()
        try:
            future.set_result(self._decode(fingerprint, payload))
        except WireError as error:
            raise ServiceError(
                f"undecodable artifact from {self.url}: {error}"
            ) from None
        return _ClientRunFuture(self, request, fingerprint, future, detail)

    def _pending_handle(
        self, request: RunRequest, fingerprint: str, detail: str
    ) -> RunFuture:
        with self._lock:
            future = self._pending.setdefault(fingerprint, Future())
        return _ClientRunFuture(self, request, fingerprint, future, detail)

    def _poll_batch(
        self, fingerprints: list[str], detail: str
    ) -> Iterator[tuple[str, dict]]:
        """Chunked no-wait ``POST /runs/poll``; yields (fp, payload)."""
        for chunk in _chunked(fingerprints, self.poll_chunk):
            body = json.dumps(encode_poll(chunk, 0.0, detail)).encode()
            status, payloads = self._request(
                "POST", "/runs/poll", body=body, jsonl=True
            )
            if status != 200:
                message = (
                    payloads[0].get("error", "") if payloads else ""
                )
                raise ServiceError(
                    f"poll endpoint answered HTTP {status}: {message}"
                )
            for payload in payloads:
                yield payload.get("fingerprint", ""), payload

    def _notify(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    def as_done(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunFuture]:
        """Yield unique futures as the daemon completes their runs.

        Resolved futures come first; the rest settle over batch-aware
        long-poll rounds (one connection per round, daemon completion
        order), falling back to the v1 streaming GET.
        """
        unique = list(dict.fromkeys(futures))
        total = len(unique)
        done = 0
        # Distinct future objects can share one fingerprint (two
        # submit() calls of the same request); all of them resolve --
        # and yield -- when that fingerprint settles, mirroring the
        # in-process as_done over per-call wrapper futures.
        pending: dict[str, list[RunFuture]] = {}
        for future in unique:
            if future.done():
                done += 1
                self._notify(done, total)
                yield future
            else:
                pending.setdefault(future.fingerprint, []).append(future)
        use_v2 = bool(pending) and self._ensure_negotiated()
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            wait_s = self.poll_wait_s
            if deadline is not None:
                wait_s = min(wait_s, deadline - time.monotonic())
                if wait_s <= 0:
                    raise TimeoutError(
                        f"{len(pending)} run(s) still pending"
                    )
            if use_v2:
                # Futures for one fingerprint share a detail level by
                # construction; across fingerprints the round polls at
                # the richest level any waiter needs (a full ledger
                # satisfies a headline waiter; not vice versa).
                round_detail = (
                    "full"
                    if any(
                        getattr(f, "_detail", "full") == "full"
                        for group in pending.values()
                        for f in group
                    )
                    else "headline"
                )
                settled = self._poll_settled(
                    list(pending), wait_s, round_detail
                )
            else:
                settled = self._stream_settled(list(pending), wait_s)
            for fingerprint in settled:
                for future in pending.pop(fingerprint, []):
                    if future.done():
                        done += 1
                        self._notify(done, total)
                        yield future
            # Defensive: a future settled by a concurrent poller would
            # never surface through this round's stream.
            for fingerprint in [
                fp
                for fp, group in pending.items()
                if group and group[0].done()
            ]:
                for future in pending.pop(fingerprint):
                    done += 1
                    self._notify(done, total)
                    yield future

    def _poll_settled(
        self, fingerprints: list[str], wait_s: float, detail: str
    ) -> Iterator[str]:
        """One batch-poll round; yields fingerprints it settled.

        The first chunk long-polls (streamed JSONL in completion
        order); follow-up chunks are no-wait buffered polls, so one
        round costs ``ceil(n/chunk)`` exchanges but blocks only once.
        """
        for index, chunk in enumerate(
            _chunked(fingerprints, self.poll_chunk)
        ):
            chunk_wait = wait_s if index == 0 else 0.0
            body = json.dumps(
                encode_poll(chunk, chunk_wait, detail)
            ).encode()
            if chunk_wait > 0:
                status, response = self._request(
                    "POST",
                    "/runs/poll",
                    body=body,
                    timeout_s=self.timeout_s + chunk_wait,
                    stream=True,
                )
                yield from self._consume_stream(status, response)
            else:
                status, payloads = self._request(
                    "POST", "/runs/poll", body=body, jsonl=True
                )
                if status != 200:
                    raise ServiceError(
                        f"poll endpoint answered HTTP {status}"
                    )
                for payload in payloads:
                    if payload.get("kind") == "pending":
                        continue
                    fingerprint = payload.get("fingerprint", "")
                    self._settle(fingerprint, payload)
                    yield fingerprint

    def _stream_settled(
        self, fingerprints: list[str], wait_s: float
    ) -> Iterator[str]:
        """One v1 streaming round; yields fingerprints it settled."""
        query = urlencode(
            [("fp", fp) for fp in fingerprints] + [("wait", f"{wait_s:.3f}")]
        )
        status, response = self._request(
            "GET",
            f"/runs?{query}",
            timeout_s=self.timeout_s + wait_s,
            stream=True,
        )
        yield from self._consume_stream(status, response)

    def _consume_stream(self, status: int, response) -> Iterator[str]:
        """Settle futures off a live JSONL response (close-delimited)."""
        try:
            if status != 200:
                response.read()
                raise ServiceError(
                    f"streaming endpoint answered HTTP {status}"
                )
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ServiceError(
                        f"undecodable stream line: {error}"
                    ) from None
                fingerprint = payload.get("fingerprint", "")
                if payload.get("kind") == "pending":
                    continue
                self._settle(fingerprint, payload)
                yield fingerprint
        except (ConnectionError, TimeoutError, OSError) as error:
            if isinstance(error, ServiceError):
                raise
            raise ServiceUnavailable(
                f"stream from {self.url} died: {type(error).__name__}: "
                f"{error}"
            ) from None
        finally:
            response.close()
            self._drop_connection()  # stream sockets are close-delimited

    def as_resolved(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunArtifact]:
        """Yield artifacts in daemon completion order (errors raise)."""
        for future in self.as_done(futures, timeout=timeout):
            yield future.result()

    def run(
        self,
        request: RunRequest,
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> RunArtifact:
        """Resolve one request against the daemon, blocking."""
        return self.submit(
            request, use_store=use_store, detail=detail
        ).result()

    def run_many(
        self,
        requests: Sequence[RunRequest],
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> list[RunArtifact]:
        """Resolve a batch, preserving request order.

        Matches the orchestrator's semantics: duplicates resolve once,
        completions stream (and persist daemon-side) as they land, and
        the first failure raises only after every survivor resolved.
        """
        futures = self.submit_many(
            requests, use_store=use_store, detail=detail
        )
        first_error: BaseException | None = None
        for future in self.as_done(futures):
            error = future.exception()
            if error is not None:
                first_error = first_error or error
        if first_error is not None:
            raise first_error
        return [future.result() for future in futures]


def _chunked(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class _ClientRunFuture(RunFuture):
    """A :class:`RunFuture` whose pending state lives on the daemon.

    ``result``/``exception`` trigger an individual long-poll when
    nobody is streaming the batch; everything else (``done``,
    identity, artifact access) is the inherited behavior.  The detail
    level it was submitted at rides along so individual long-polls
    ask for the same projection the batch paths would.
    """

    __slots__ = ("_client", "_detail")

    def __init__(
        self,
        client: ServiceClient,
        request: RunRequest,
        fingerprint: str,
        future: Future,
        detail: str = "full",
    ) -> None:
        super().__init__(request, fingerprint, future)
        self._client = client
        self._detail = detail

    def _ensure_resolution(self, timeout: float | None) -> None:
        if not self._future.done():
            self._client._await(self.fingerprint, timeout, self._detail)

    def result(self, timeout: float | None = None) -> RunArtifact:
        """Block for the artifact, long-polling the daemon if needed."""
        self._ensure_resolution(timeout)
        return self._future.result(timeout)

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        """The run's daemon-side error, or None (blocks like result)."""
        self._ensure_resolution(timeout)
        return self._future.exception(timeout)
