"""Drop-in orchestrator client for a remote experiment daemon.

:class:`ServiceClient` implements the
:class:`~repro.experiments.orchestrator.Orchestrator` consumer surface
-- ``submit`` / ``submit_many`` / ``as_done`` / ``as_resolved`` /
``run`` / ``run_many`` / ``with_jobs`` -- against an
:class:`~repro.service.server.ExperimentDaemon` URL, so every analysis
that takes an ``orchestrator=`` parameter (``runner``, ``scenarios``,
``pareto``, ``sensitivity``, ``lower_bound``) runs remotely with zero
changes to its logic: the CLI's ``--service URL`` path is exactly
``orchestrator=ServiceClient(url)``.

Resolution model
----------------

``submit`` POSTs the encoded request: a ``200`` resolves the returned
future immediately (store hit or serial run); a ``202`` leaves it
pending.  Pending futures resolve two ways, whichever happens first:

* :meth:`as_done` / :meth:`as_resolved` open the daemon's streaming
  endpoint and resolve futures as artifact lines arrive in completion
  order (one connection for the whole batch -- the wire mirror of the
  in-process ``as_resolved``);
* :meth:`RunFuture.result` on an individual pending future falls back
  to long-polling ``GET /runs/<fingerprint>``.

Both paths funnel through one idempotent resolver, so a stream and a
poll racing on the same future are benign.  Connection-level failures
raise :class:`ServiceError` (the CLI maps it to a clean nonzero
exit); a run that *failed on the daemon* raises a
:class:`ServiceRunError` carrying the daemon-side message.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from concurrent.futures import Future
from typing import Callable, Iterable, Iterator, Sequence
from urllib.parse import quote, urlencode, urlsplit

from repro.experiments.orchestrator import (
    RunArtifact,
    RunFuture,
    RunRequest,
)
from repro.service.protocol import (
    WIRE_VERSION,
    WireError,
    decode_artifact,
    encode_request,
)

__all__ = ["ServiceClient", "ServiceError", "ServiceRunError"]

#: Seconds of server-side blocking requested per long-poll/stream call.
_POLL_WAIT_S = 30.0


class ServiceError(ConnectionError):
    """The daemon is unreachable or answered outside the protocol."""


class ServiceRunError(RuntimeError):
    """A run failed on the daemon; carries the daemon-side message."""


class ServiceClient:
    """Resolve run requests against a remote experiment daemon.

    Parameters
    ----------
    url:
        Daemon base URL, e.g. ``http://127.0.0.1:8123``.
    use_store:
        Default cache behavior forwarded with every submission
        (``False`` = the CLI's ``--no-cache``: the daemon resimulates
        but still records).
    progress:
        Optional ``callback(completed, total)`` fired per resolved run
        of a batch, exactly like the orchestrator's.
    timeout_s:
        Socket timeout for individual HTTP calls.  Calls that
        deliberately block server-side (long-poll, stream) add their
        ``wait`` on top.
    """

    def __init__(
        self,
        url: str,
        use_store: bool = True,
        progress: Callable[[int, int], None] | None = None,
        timeout_s: float = 10.0,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        try:
            port = parts.port
        except ValueError:
            port = None
            parts = None  # unparseable port
        if (
            parts is None
            or parts.scheme != "http"
            or not parts.hostname
            or parts.path.strip("/")
            or parts.query
        ):
            raise ServiceError(
                f"service URL must look like http://host:port, got {url!r}"
            )
        self.url = f"http://{parts.hostname}:{port or 80}"
        self.host = parts.hostname
        self.port = port or 80
        self.use_store = use_store
        self.progress = progress
        self.timeout_s = timeout_s
        self.jobs = 0  # execution capacity lives daemon-side
        self._local = threading.local()
        self._lock = threading.Lock()
        self._pending: dict[str, Future] = {}

    # -- HTTP plumbing -----------------------------------------------------

    def _connection(self, timeout_s: float) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s
            )
            connection.connect()
            # Requests also go out as two sends (headers, body); see
            # the server handler's disable_nagle_algorithm note.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
        else:
            connection.timeout = timeout_s
            if connection.sock is not None:
                connection.sock.settimeout(timeout_s)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout_s: float | None = None,
        stream: bool = False,
    ):
        """One HTTP exchange; returns ``(status, response)``.

        Keep-alive connections are reused per thread; a request that
        dies on a stale socket is retried once on a fresh one.
        Returns the live response object when ``stream`` (caller
        reads/closes), else ``(status, parsed JSON payload)``.
        """
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        headers = {"Content-Type": "application/json"}
        for attempt in (0, 1):
            try:
                connection = self._connection(timeout_s)
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                if stream:
                    return response.status, response
                payload = json.loads(response.read())
                if response.will_close:
                    self._drop_connection()
                return response.status, payload
            except (
                http.client.HTTPException,
                ConnectionError,
                TimeoutError,
                OSError,
                json.JSONDecodeError,
            ) as error:
                self._drop_connection()
                if attempt == 0 and isinstance(
                    error,
                    (
                        http.client.RemoteDisconnected,
                        BrokenPipeError,
                        ConnectionResetError,
                    ),
                ):
                    continue  # stale keep-alive socket; retry once
                raise ServiceError(
                    f"cannot reach experiment service at {self.url}: "
                    f"{type(error).__name__}: {error}"
                ) from None
        raise AssertionError("unreachable")

    def ping(self) -> dict:
        """``GET /healthz``; raises :class:`ServiceError` if down."""
        status, payload = self._request("GET", "/healthz")
        if status != 200 or payload.get("status") != "ok":
            raise ServiceError(
                f"experiment service at {self.url} is unhealthy: "
                f"HTTP {status} {payload!r}"
            )
        return payload

    def stats(self) -> dict:
        """The daemon's ``/stats`` counters."""
        status, payload = self._request("GET", "/stats")
        if status != 200:
            raise ServiceError(f"/stats answered HTTP {status}")
        return payload

    # -- future resolution -------------------------------------------------

    def _settle(self, fingerprint: str, payload: dict) -> None:
        """Resolve the pending future for one terminal payload."""
        with self._lock:
            future = self._pending.pop(fingerprint, None)
        if future is None or future.done():
            return
        kind = payload.get("kind")
        if kind == "run_artifact":
            try:
                future.set_result(decode_artifact(payload))
            except WireError as error:
                future.set_exception(ServiceError(str(error)))
        else:
            future.set_exception(
                ServiceRunError(
                    payload.get("error", f"service answered {payload!r}")
                )
            )

    def _await(self, fingerprint: str, timeout: float | None) -> None:
        """Long-poll one fingerprint until it settles (or times out)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        path = f"/runs/{quote(fingerprint)}"
        while True:
            with self._lock:
                if fingerprint not in self._pending:
                    return  # settled by a concurrent stream/poll
            wait_s = _POLL_WAIT_S
            if deadline is not None:
                wait_s = min(wait_s, deadline - time.monotonic())
                if wait_s <= 0:
                    raise TimeoutError(
                        f"run {fingerprint[:12]}... still pending"
                    )
            status, payload = self._request(
                "GET",
                f"{path}?wait={wait_s:.3f}",
                timeout_s=self.timeout_s + wait_s,
            )
            if status == 202:
                continue
            self._settle(fingerprint, payload)
            return

    # -- the orchestrator surface ------------------------------------------

    def with_jobs(self, jobs: int) -> "ServiceClient":
        """No-op for API compatibility: capacity is the daemon's."""
        return self

    def close(self) -> None:
        """Drop this thread's keep-alive connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def submit(
        self, request: RunRequest, use_store: bool | None = None
    ) -> RunFuture:
        """Submit one request to the daemon.

        Store hits (daemon-side) return an already-resolved future;
        misses return a pending future that resolves through the
        streaming endpoint (:meth:`as_done`) or an individual
        long-poll (:meth:`RunFuture.result`).
        """
        if use_store is None:
            use_store = self.use_store
        fingerprint = request.fingerprint()
        with self._lock:
            pending = self._pending.get(fingerprint)
        if pending is not None and use_store:
            return _ClientRunFuture(self, request, fingerprint, pending)
        if use_store:
            # Probe by fingerprint before shipping the full request:
            # a warm hit (or a run already in flight daemon-side)
            # resolves without uploading the encoded body at all --
            # which for recorded-trace packs is the whole matrix.
            probed = self._probe(request, fingerprint)
            if probed is not None:
                return probed
        body = json.dumps(
            encode_request(request, fingerprint, use_store=use_store)
        ).encode()
        status, payload = self._request("POST", "/runs", body=body)
        future: Future = Future()
        handle = _ClientRunFuture(self, request, fingerprint, future)
        if status == 200 and payload.get("kind") == "run_artifact":
            try:
                future.set_result(decode_artifact(payload))
            except WireError as error:
                raise ServiceError(
                    f"undecodable artifact from {self.url}: {error}"
                ) from None
            return handle
        if status == 202 and payload.get("kind") == "pending":
            with self._lock:
                existing = self._pending.get(fingerprint)
                if existing is None:
                    self._pending[fingerprint] = future
                else:
                    future = existing
            return _ClientRunFuture(self, request, fingerprint, future)
        message = payload.get("error", f"service answered HTTP {status}")
        if status >= 500:
            future.set_exception(ServiceRunError(message))
            return handle
        raise ServiceError(
            f"service rejected run {fingerprint[:12]}...: {message}"
        )

    def _probe(
        self, request: RunRequest, fingerprint: str
    ) -> RunFuture | None:
        """Resolve a submission by fingerprint alone, if the daemon can.

        ``200`` yields a resolved future, ``202`` (already in flight)
        a registered pending one; anything else -- unknown, or a
        previously failed run, which a fresh submission should retry
        -- returns None and the caller POSTs the full request.
        """
        status, payload = self._request("GET", f"/runs/{quote(fingerprint)}")
        if status == 200 and payload.get("kind") == "run_artifact":
            future: Future = Future()
            try:
                future.set_result(decode_artifact(payload))
            except WireError as error:
                raise ServiceError(
                    f"undecodable artifact from {self.url}: {error}"
                ) from None
            return _ClientRunFuture(self, request, fingerprint, future)
        if status == 202 and payload.get("kind") == "pending":
            with self._lock:
                future = self._pending.setdefault(fingerprint, Future())
            return _ClientRunFuture(self, request, fingerprint, future)
        return None

    def submit_many(
        self, requests: Sequence[RunRequest], use_store: bool | None = None
    ) -> list[RunFuture]:
        """Submit a batch; duplicate fingerprints share one future."""
        futures: list[RunFuture] = []
        by_fingerprint: dict[str, RunFuture] = {}
        for request in requests:
            fingerprint = request.fingerprint()
            future = by_fingerprint.get(fingerprint)
            if future is None:
                future = self.submit(request, use_store=use_store)
                by_fingerprint[fingerprint] = future
            futures.append(future)
        return futures

    def _notify(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    def as_done(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunFuture]:
        """Yield unique futures as the daemon completes their runs.

        Resolved futures come first; the rest stream back over one
        connection per wait round in daemon completion order.
        """
        unique = list(dict.fromkeys(futures))
        total = len(unique)
        done = 0
        # Distinct future objects can share one fingerprint (two
        # submit() calls of the same request); all of them resolve --
        # and yield -- when that fingerprint settles, mirroring the
        # in-process as_done over per-call wrapper futures.
        pending: dict[str, list[RunFuture]] = {}
        for future in unique:
            if future.done():
                done += 1
                self._notify(done, total)
                yield future
            else:
                pending.setdefault(future.fingerprint, []).append(future)
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            wait_s = _POLL_WAIT_S
            if deadline is not None:
                wait_s = min(wait_s, deadline - time.monotonic())
                if wait_s <= 0:
                    raise TimeoutError(
                        f"{len(pending)} run(s) still pending"
                    )
            for fingerprint in self._stream_settled(
                list(pending), wait_s
            ):
                for future in pending.pop(fingerprint, []):
                    if future.done():
                        done += 1
                        self._notify(done, total)
                        yield future
            # Defensive: a future settled by a concurrent poller would
            # never surface through this round's stream.
            for fingerprint in [
                fp
                for fp, group in pending.items()
                if group and group[0].done()
            ]:
                for future in pending.pop(fingerprint):
                    done += 1
                    self._notify(done, total)
                    yield future

    def _stream_settled(
        self, fingerprints: list[str], wait_s: float
    ) -> Iterator[str]:
        """One streaming round; yields fingerprints it settled."""
        query = urlencode(
            [("fp", fp) for fp in fingerprints] + [("wait", f"{wait_s:.3f}")]
        )
        status, response = self._request(
            "GET",
            f"/runs?{query}",
            timeout_s=self.timeout_s + wait_s,
            stream=True,
        )
        try:
            if status != 200:
                response.read()
                raise ServiceError(
                    f"streaming endpoint answered HTTP {status}"
                )
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ServiceError(
                        f"undecodable stream line: {error}"
                    ) from None
                fingerprint = payload.get("fingerprint", "")
                if payload.get("kind") == "pending":
                    continue
                self._settle(fingerprint, payload)
                yield fingerprint
        except (ConnectionError, TimeoutError, OSError) as error:
            if isinstance(error, ServiceError):
                raise
            raise ServiceError(
                f"stream from {self.url} died: {type(error).__name__}: "
                f"{error}"
            ) from None
        finally:
            response.close()
            self._drop_connection()  # stream sockets are close-delimited

    def as_resolved(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunArtifact]:
        """Yield artifacts in daemon completion order (errors raise)."""
        for future in self.as_done(futures, timeout=timeout):
            yield future.result()

    def run(
        self, request: RunRequest, use_store: bool | None = None
    ) -> RunArtifact:
        """Resolve one request against the daemon, blocking."""
        return self.submit(request, use_store=use_store).result()

    def run_many(
        self, requests: Sequence[RunRequest], use_store: bool | None = None
    ) -> list[RunArtifact]:
        """Resolve a batch, preserving request order.

        Matches the orchestrator's semantics: duplicates resolve once,
        completions stream (and persist daemon-side) as they land, and
        the first failure raises only after every survivor resolved.
        """
        futures = self.submit_many(requests, use_store=use_store)
        first_error: BaseException | None = None
        for future in self.as_done(futures):
            error = future.exception()
            if error is not None:
                first_error = first_error or error
        if first_error is not None:
            raise first_error
        return [future.result() for future in futures]


class _ClientRunFuture(RunFuture):
    """A :class:`RunFuture` whose pending state lives on the daemon.

    ``result``/``exception`` trigger an individual long-poll when
    nobody is streaming the batch; everything else (``done``,
    identity, artifact access) is the inherited behavior.
    """

    __slots__ = ("_client",)

    def __init__(
        self,
        client: ServiceClient,
        request: RunRequest,
        fingerprint: str,
        future: Future,
    ) -> None:
        super().__init__(request, fingerprint, future)
        self._client = client

    def _ensure_resolution(self, timeout: float | None) -> None:
        if not self._future.done():
            self._client._await(self.fingerprint, timeout)

    def result(self, timeout: float | None = None) -> RunArtifact:
        """Block for the artifact, long-polling the daemon if needed."""
        self._ensure_resolution(timeout)
        return self._future.result(timeout)

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        """The run's daemon-side error, or None (blocks like result)."""
        self._ensure_resolution(timeout)
        return self._future.exception(timeout)
