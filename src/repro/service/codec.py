"""Reversible JSON codec for the run-request object universe.

The orchestrator's :func:`~repro.experiments.orchestrator.canonical`
flattens requests one-way for fingerprinting; shipping a
:class:`~repro.experiments.orchestrator.RunRequest` to a remote daemon
additionally needs the way *back*.  :func:`encode` maps the closed
universe of objects a request can contain -- dataclasses (configs,
specs, tariffs, packs), enums (app types), placement policies,
module-level functions (the local allocator), numpy arrays (recorded
trace matrices) and plain containers -- onto tagged JSON trees that
:func:`decode` reconstructs exactly.

Round-trip contract
-------------------

``decode(encode(request))`` rebuilds a request whose
:meth:`~repro.experiments.orchestrator.RunRequest.fingerprint` equals
the original's -- the property the whole service rests on (the daemon
recomputes fingerprints from decoded requests and refuses mismatches).
The protocol tests assert it over every registered policy, scale and
pack kind.

Decoding safety
---------------

Tagged nodes name classes/functions as ``module:qualname``.  Decoding
imports them, which executes module top-levels -- so only modules
inside the :data:`ALLOWED_PACKAGE` tree (``repro``) resolve, and the
referenced object must actually *be* a dataclass, enum or callable of
the claimed category.  Anything else raises :class:`CodecError`
instead of importing.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import importlib
from typing import Any

import numpy as np

__all__ = ["ALLOWED_PACKAGE", "CodecError", "decode", "encode"]

#: Top-level package decodable references must live in.
ALLOWED_PACKAGE = "repro"

#: Tag keys marking non-plain JSON nodes.  A plain dict containing one
#: of these as a key is encoded through the __items__ escape so the
#: tags can never be forged by data.
_TAGS = (
    "__tuple__",
    "__items__",
    "__enum__",
    "__dataclass__",
    "__ndarray__",
    "__callable__",
    "__object__",
)


class CodecError(ValueError):
    """A value cannot be encoded, or a tree cannot be safely decoded."""


def _qualify(obj: type | Any) -> str:
    """The ``module:qualname`` reference for an encodable object.

    Applies the same allowlist as decoding, so an unshippable request
    (a policy or allocator defined outside :data:`ALLOWED_PACKAGE`)
    fails at *encode* time on the client instead of as a daemon 400.
    """
    module = getattr(obj, "__module__", None) or ""
    if module != ALLOWED_PACKAGE and not module.startswith(
        ALLOWED_PACKAGE + "."
    ):
        raise CodecError(
            f"cannot encode reference to {module}:{obj.__qualname__}: "
            f"only {ALLOWED_PACKAGE!r} objects cross the wire"
        )
    return f"{module}:{obj.__qualname__}"


def encode(value: Any) -> Any:
    """Encode ``value`` into a JSON-dumpable tagged tree.

    Lossless inverse of :func:`decode` over the request universe;
    raises :class:`CodecError` for objects outside it (live libraries,
    open files, lambdas and other unnameable callables).
    """
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": _qualify(type(value)), "name": value.name}
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {
            "__ndarray__": data.dtype.str,
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }
    if isinstance(value, np.generic):
        return encode(value.item())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _qualify(type(value)),
            "fields": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.init
            },
        }
    if isinstance(value, dict):
        plain_keys = all(
            isinstance(key, str) and key not in _TAGS for key in value
        )
        if plain_keys:
            return {key: encode(val) for key, val in value.items()}
        return {
            "__items__": [
                [encode(key), encode(val)] for key, val in value.items()
            ]
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if callable(value) and hasattr(value, "__qualname__"):
        if "<" in value.__qualname__ or not hasattr(value, "__module__"):
            raise CodecError(
                f"cannot encode unnameable callable {value!r}"
            )
        if isinstance(value, type):
            raise CodecError(
                f"cannot encode bare class {value!r}; encode an instance"
            )
        return {"__callable__": _qualify(value)}
    if hasattr(value, "__dict__"):
        state = {
            key: encode(val)
            for key, val in sorted(vars(value).items())
            if not key.startswith("_")
        }
        return {"__object__": _qualify(type(value)), "state": state}
    raise CodecError(
        f"cannot encode {type(value).__name__} value: {value!r}"
    )


def _resolve(reference: str) -> Any:
    """Import a ``module:qualname`` reference inside the allowlist."""
    module_name, _, qualname = reference.partition(":")
    if not qualname:
        raise CodecError(f"malformed reference {reference!r}")
    if module_name != ALLOWED_PACKAGE and not module_name.startswith(
        ALLOWED_PACKAGE + "."
    ):
        raise CodecError(
            f"refusing to import {reference!r}: decodable references "
            f"must live under the {ALLOWED_PACKAGE!r} package"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise CodecError(f"cannot import {reference!r}: {error}") from None
    target: Any = module
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise CodecError(
                f"{module_name} has no attribute chain {qualname!r}"
            ) from None
    # The module-name check alone is spoofable: repro modules import
    # the stdlib, so "repro.cli:os.system" would walk to a foreign
    # callable.  The *resolved* object must itself live in the
    # allowlisted tree.
    owner = getattr(target, "__module__", None) or ""
    if owner != ALLOWED_PACKAGE and not owner.startswith(
        ALLOWED_PACKAGE + "."
    ):
        raise CodecError(
            f"refusing {reference!r}: it resolves to an object defined "
            f"in {owner or '<unknown>'!r}, outside the "
            f"{ALLOWED_PACKAGE!r} package"
        )
    return target


def decode(tree: Any) -> Any:
    """Rebuild the value an :func:`encode` tree describes.

    Raises :class:`CodecError` on malformed trees, references outside
    the allowlist, or references whose category does not match their
    tag (e.g. a ``__dataclass__`` node naming a plain class).
    """
    if isinstance(tree, (bool, int, float, str)) or tree is None:
        return tree
    if isinstance(tree, list):
        return [decode(item) for item in tree]
    if not isinstance(tree, dict):
        raise CodecError(f"cannot decode {type(tree).__name__} node")
    if "__tuple__" in tree:
        return tuple(decode(item) for item in tree["__tuple__"])
    if "__items__" in tree:
        return {
            decode(key): decode(val) for key, val in tree["__items__"]
        }
    if "__enum__" in tree:
        cls = _resolve(tree["__enum__"])
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise CodecError(f"{tree['__enum__']!r} is not an enum")
        try:
            return cls[tree["name"]]
        except KeyError:
            raise CodecError(
                f"{tree['__enum__']} has no member {tree['name']!r}"
            ) from None
    if "__ndarray__" in tree:
        raw = base64.b64decode(tree["data"])
        return np.frombuffer(raw, dtype=np.dtype(tree["__ndarray__"])).reshape(
            tree["shape"]
        ).copy()
    if "__dataclass__" in tree:
        cls = _resolve(tree["__dataclass__"])
        if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
            raise CodecError(
                f"{tree['__dataclass__']!r} is not a dataclass"
            )
        fields = {
            name: decode(val) for name, val in tree.get("fields", {}).items()
        }
        try:
            return cls(**fields)
        except TypeError as error:
            raise CodecError(
                f"cannot rebuild {tree['__dataclass__']}: {error}"
            ) from None
    if "__callable__" in tree:
        target = _resolve(tree["__callable__"])
        if not callable(target) or isinstance(target, type):
            raise CodecError(
                f"{tree['__callable__']!r} is not a plain callable"
            )
        return target
    if "__object__" in tree:
        cls = _resolve(tree["__object__"])
        if not isinstance(cls, type):
            raise CodecError(f"{tree['__object__']!r} is not a class")
        state = {
            name: decode(val) for name, val in tree.get("state", {}).items()
        }
        try:
            return cls(**state)
        except TypeError as error:
            raise CodecError(
                f"cannot rebuild {tree['__object__']}: {error}"
            ) from None
    return {key: decode(val) for key, val in tree.items()}
