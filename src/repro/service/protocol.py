"""Versioned wire envelopes for requests, artifacts and errors.

Every payload the daemon and client exchange is one JSON object with
two mandatory fields: ``wire_version`` and ``kind`` (``run_request`` /
``run_artifact`` / ``pending`` / ``error`` / ``run_batch`` /
``run_poll``).  Requests additionally carry the client-computed
fingerprint so the daemon can verify its decode reproduced the exact
run identity before touching the store; artifacts carry either the
serialized :class:`~repro.sim.results.RunResult` ledger
(``detail=full``, round-tripping bit-identically -- the same
``to_dict``/``from_dict`` pair the store uses) or the headline
projection (``detail=headline``,
:meth:`~repro.sim.results.RunResult.headline`).

Version-skew rules
------------------

:data:`WIRE_VERSION` is what this side *speaks*;
:data:`SUPPORTED_WIRE_VERSIONS` is what it *accepts*.  Wire v2 added
the batch/poll kinds, the ``detail`` field and compression
negotiation; v1 envelopes are a strict subset of v2, so a v2 peer
serves v1 traffic by answering with envelopes at the request's own
version (full detail, single-request endpoints only).  A v1 peer
refuses v2 envelopes with a version-mismatch error, which the client
uses to negotiate down (see
:meth:`~repro.service.client.ServiceClient.ping`).  Payload kinds a
version does not know must never be sent to it -- batch and poll
envelopes are v2-only.

The codec (:mod:`repro.service.codec`) handles the object tree inside
``request``; this module owns the envelopes, so protocol evolution
(new kinds, new fields) is confined here and versioned explicitly.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments.orchestrator import RunArtifact, RunRequest
from repro.service.codec import CodecError, decode, encode
from repro.sim.results import HeadlineResult, RunResult

__all__ = [
    "DETAIL_LEVELS",
    "FingerprintMismatch",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "WireError",
    "decode_artifact",
    "decode_batch",
    "decode_poll",
    "decode_request",
    "encode_artifact",
    "encode_batch",
    "encode_error",
    "encode_health",
    "encode_pending",
    "encode_poll",
    "encode_request",
]

#: Version of the wire envelopes and the codec's tag scheme this side
#: speaks by default.  Bump on any change an old peer would misread.
WIRE_VERSION = 2

#: Versions this side accepts from a peer.  v1 lacks batch/poll kinds,
#: ``detail`` and compression; v1 peers are answered in v1 envelopes.
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: Artifact projection levels a client may request (v2 only).
DETAIL_LEVELS = ("headline", "full")


class WireError(ValueError):
    """A payload violates the wire protocol (version, kind, shape)."""


class FingerprintMismatch(WireError):
    """A request's declared fingerprint disagrees with its content.

    Kept distinct from other wire errors because the daemon answers it
    with ``409 Conflict`` (the payload is well-formed; its *identity*
    is inconsistent -- almost always client/daemon codec drift).
    """


def _check_envelope(payload: Any, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise WireError(f"expected a JSON object, got {type(payload).__name__}")
    version = payload.get("wire_version")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireError(
            f"wire version mismatch: peer speaks {version!r}, this side "
            f"accepts {SUPPORTED_WIRE_VERSIONS}"
        )
    if payload.get("kind") != kind:
        raise WireError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}"
        )
    return payload


def check_detail(detail: Any) -> str:
    """Validate a ``detail`` field; returns it (default ``full``)."""
    if detail is None:
        return "full"
    if detail not in DETAIL_LEVELS:
        raise WireError(
            f"unknown detail level {detail!r}; choose from {DETAIL_LEVELS}"
        )
    return detail


def encode_request(
    request: RunRequest,
    fingerprint: str | None = None,
    use_store: bool = True,
    wire_version: int = WIRE_VERSION,
    detail: str = "full",
) -> dict:
    """The ``POST /runs`` body (and batch entry) for ``request``.

    ``fingerprint`` defaults to the request's own; passing a
    precomputed one saves the client a second canonicalization pass.
    ``use_store=False`` asks the daemon to resimulate even on a store
    hit (the ``--no-cache`` path; the result is still recorded).
    ``wire_version`` lets a client negotiated down to a v1 daemon
    keep submitting (a v1 envelope carries no ``detail`` field and is
    answered at full detail).
    """
    payload = {
        "wire_version": wire_version,
        "kind": "run_request",
        "fingerprint": fingerprint or request.fingerprint(),
        "use_store": bool(use_store),
        "request": encode(request),
    }
    if wire_version >= 2:
        payload["detail"] = check_detail(detail)
    return payload


def decode_request(payload: Any) -> tuple[RunRequest, str, bool]:
    """Decode and verify a ``run_request`` payload (any supported version).

    Returns ``(request, fingerprint, use_store)``.  The declared
    fingerprint must match the decoded request's own -- a mismatch
    means codec drift (or a corrupted payload) and is refused before
    it can poison the store.
    """
    payload = _check_envelope(payload, "run_request")
    declared = payload.get("fingerprint")
    if not isinstance(declared, str):
        raise WireError("run_request payload lacks a fingerprint")
    try:
        request = decode(payload.get("request"))
    except CodecError as error:
        raise WireError(f"undecodable request: {error}") from None
    if not isinstance(request, RunRequest):
        raise WireError(
            f"payload decodes to {type(request).__name__}, not a RunRequest"
        )
    actual = request.fingerprint()
    if actual != declared:
        raise FingerprintMismatch(
            f"fingerprint mismatch: payload declares {declared[:12]}..., "
            f"decoded request hashes to {actual[:12]}... (codec drift?)"
        )
    return request, actual, bool(payload.get("use_store", True))


def encode_artifact(
    artifact: RunArtifact,
    detail: str = "full",
    wire_version: int = WIRE_VERSION,
) -> dict:
    """The wire form of a resolved artifact.

    ``detail=full`` ships the complete ledger under ``result`` (the
    only form v1 knows); ``detail=headline`` ships the headline
    projection under ``headline`` instead -- v2 only.
    """
    payload = {
        "wire_version": wire_version,
        "kind": "run_artifact",
        "fingerprint": artifact.fingerprint,
        "source": artifact.source,
        "elapsed_s": artifact.elapsed_s,
    }
    if wire_version >= 2:
        payload["detail"] = check_detail(detail)
    if detail == "headline":
        if wire_version < 2:
            raise WireError("detail=headline needs wire version >= 2")
        payload["headline"] = artifact.result.headline()
    else:
        payload["result"] = artifact.result.to_dict()
    return payload


def decode_artifact(
    payload: Any, fetch_full: Callable[[], RunResult] | None = None
) -> RunArtifact:
    """Rebuild a :class:`RunArtifact` from its wire form.

    ``detail=headline`` payloads decode to an artifact carrying a
    :class:`~repro.sim.results.HeadlineResult`; ``fetch_full`` (the
    service client supplies a per-fingerprint fetcher) is what lets
    that projection lazily upgrade to the full ledger on demand.
    """
    payload = _check_envelope(payload, "run_artifact")
    detail = check_detail(payload.get("detail"))
    if detail == "headline":
        headline = payload.get("headline")
        if not isinstance(headline, dict):
            raise WireError("headline artifact lacks a headline block")
        result: RunResult | HeadlineResult = HeadlineResult(
            headline, fetch_full=fetch_full
        )
    else:
        try:
            result = RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError) as error:
            raise WireError(
                f"undecodable artifact result: {error}"
            ) from None
    return RunArtifact(
        fingerprint=payload.get("fingerprint", ""),
        result=result,
        source=payload.get("source", "service"),
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
    )


def encode_batch(entries: list[dict], detail: str = "full") -> dict:
    """The ``POST /runs/batch`` body: encoded requests + one detail.

    ``entries`` are :func:`encode_request` envelopes (each carries its
    own ``use_store`` flag); the daemon answers one JSON line per
    entry (artifact / pending / error), in entry order, so a whole
    sweep submits in one round trip.
    """
    return {
        "wire_version": WIRE_VERSION,
        "kind": "run_batch",
        "detail": check_detail(detail),
        "entries": entries,
    }


def decode_batch(payload: Any) -> tuple[list[dict], str]:
    """Validate a batch envelope; returns ``(entries, detail)``.

    Entries are validated individually by the submit path (each is a
    full ``run_request`` envelope) -- this checks only the batch
    framing, so one malformed entry poisons its own disposition line,
    not the whole batch.
    """
    payload = _check_envelope(payload, "run_batch")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        raise WireError("run_batch payload needs a non-empty entries list")
    return entries, check_detail(payload.get("detail"))


def encode_poll(
    fingerprints: list[str],
    wait_s: float = 0.0,
    detail: str = "full",
) -> dict:
    """The ``POST /runs/poll`` body: settle many runs in one call.

    The body-borne fingerprint list replaces the v1 query-string
    (``GET /runs?fp=...``), which URL length caps at a few hundred
    fingerprints.  ``wait=0`` answers in one (compressible) body;
    ``wait>0`` long-poll streams JSON lines in completion order.
    """
    return {
        "wire_version": WIRE_VERSION,
        "kind": "run_poll",
        "fingerprints": list(fingerprints),
        "wait": float(wait_s),
        "detail": check_detail(detail),
    }


def decode_poll(payload: Any) -> tuple[list[str], float, str]:
    """Validate a poll envelope; returns ``(fingerprints, wait, detail)``."""
    payload = _check_envelope(payload, "run_poll")
    fingerprints = payload.get("fingerprints")
    if not isinstance(fingerprints, list) or not all(
        isinstance(item, str) for item in fingerprints
    ):
        raise WireError("run_poll payload needs a list of fingerprints")
    try:
        wait_s = float(payload.get("wait", 0.0))
    except (TypeError, ValueError):
        raise WireError("run_poll wait must be a number") from None
    return fingerprints, wait_s, check_detail(payload.get("detail"))


def encode_pending(
    fingerprint: str, wire_version: int = WIRE_VERSION
) -> dict:
    """The ``202``/stream payload for a run still executing."""
    return {
        "wire_version": wire_version,
        "kind": "pending",
        "fingerprint": fingerprint,
    }


def encode_health(
    daemon_id: str,
    jobs: int,
    inflight: int,
    queue_depth: int,
    workload_cache: dict | None = None,
    engine_modes: dict | None = None,
) -> dict:
    """The ``GET /healthz`` payload: liveness plus load.

    Besides the original liveness/negotiation fields this carries the
    member's identity and load so a fleet router can weight or skip
    saturated members without a second ``/stats`` round trip:
    ``jobs`` (executor width), ``inflight`` (runs executing or queued
    daemon-side) and ``queue_depth`` (``max(0, inflight - jobs)`` --
    work that cannot start until a slot frees).  ``workload_cache``
    (optional -- old daemons simply omit it) summarizes the member's
    workload materialization cache so ``repro fleet status`` can show
    cache efficacy per member without a ``/stats`` round trip.
    ``engine_modes`` (optional, same omission contract) counts the
    decoded submissions per simulation driver (``{"slot": N,
    "event": M}``) so the fleet view can show which engine cores a
    member has been serving.
    """
    payload = {
        "wire_version": WIRE_VERSION,
        "supported_wire_versions": list(SUPPORTED_WIRE_VERSIONS),
        "kind": "health",
        "status": "ok",
        "daemon_id": daemon_id,
        "jobs": int(jobs),
        "inflight": int(inflight),
        "queue_depth": int(queue_depth),
    }
    if workload_cache is not None:
        payload["workload_cache"] = workload_cache
    if engine_modes is not None:
        payload["engine_modes"] = engine_modes
    return payload


def encode_error(
    message: str,
    fingerprint: str | None = None,
    status: int = 400,
    wire_version: int = WIRE_VERSION,
) -> dict:
    """An error payload (also used per-line on the stream endpoints)."""
    payload = {
        "wire_version": wire_version,
        "kind": "error",
        "error": message,
        "status": status,
    }
    if fingerprint is not None:
        payload["fingerprint"] = fingerprint
    return payload
