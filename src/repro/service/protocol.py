"""Versioned wire envelopes for requests, artifacts and errors.

Every payload the daemon and client exchange is one JSON object with
two mandatory fields: ``wire_version`` (:data:`WIRE_VERSION`, checked
on both sides -- a mismatched peer is refused, not guessed at) and
``kind`` (``run_request`` / ``run_artifact`` / ``pending`` /
``error``).  Requests additionally carry the client-computed
fingerprint so the daemon can verify its decode reproduced the exact
run identity before touching the store; artifacts carry the serialized
:class:`~repro.sim.results.RunResult` ledger, which round-trips
bit-identically (the same ``to_dict``/``from_dict`` pair the store
uses).

The codec (:mod:`repro.service.codec`) handles the object tree inside
``request``; this module owns the envelopes, so protocol evolution
(new kinds, new fields) is confined here and versioned explicitly.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.orchestrator import RunArtifact, RunRequest
from repro.service.codec import CodecError, decode, encode
from repro.sim.results import RunResult

__all__ = [
    "FingerprintMismatch",
    "WIRE_VERSION",
    "WireError",
    "decode_artifact",
    "decode_request",
    "encode_artifact",
    "encode_error",
    "encode_pending",
    "encode_request",
]

#: Version of the wire envelopes and the codec's tag scheme.  Bump on
#: any change an old peer would misread; both sides refuse mismatches.
WIRE_VERSION = 1


class WireError(ValueError):
    """A payload violates the wire protocol (version, kind, shape)."""


class FingerprintMismatch(WireError):
    """A request's declared fingerprint disagrees with its content.

    Kept distinct from other wire errors because the daemon answers it
    with ``409 Conflict`` (the payload is well-formed; its *identity*
    is inconsistent -- almost always client/daemon codec drift).
    """


def _check_envelope(payload: Any, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise WireError(f"expected a JSON object, got {type(payload).__name__}")
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks {version!r}, this side "
            f"speaks {WIRE_VERSION}"
        )
    if payload.get("kind") != kind:
        raise WireError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}"
        )
    return payload


def encode_request(
    request: RunRequest,
    fingerprint: str | None = None,
    use_store: bool = True,
) -> dict:
    """The ``POST /runs`` body for ``request``.

    ``fingerprint`` defaults to the request's own; passing a
    precomputed one saves the client a second canonicalization pass.
    ``use_store=False`` asks the daemon to resimulate even on a store
    hit (the ``--no-cache`` path; the result is still recorded).
    """
    return {
        "wire_version": WIRE_VERSION,
        "kind": "run_request",
        "fingerprint": fingerprint or request.fingerprint(),
        "use_store": bool(use_store),
        "request": encode(request),
    }


def decode_request(payload: Any) -> tuple[RunRequest, str, bool]:
    """Decode and verify a ``run_request`` payload.

    Returns ``(request, fingerprint, use_store)``.  The declared
    fingerprint must match the decoded request's own -- a mismatch
    means codec drift (or a corrupted payload) and is refused before
    it can poison the store.
    """
    payload = _check_envelope(payload, "run_request")
    declared = payload.get("fingerprint")
    if not isinstance(declared, str):
        raise WireError("run_request payload lacks a fingerprint")
    try:
        request = decode(payload.get("request"))
    except CodecError as error:
        raise WireError(f"undecodable request: {error}") from None
    if not isinstance(request, RunRequest):
        raise WireError(
            f"payload decodes to {type(request).__name__}, not a RunRequest"
        )
    actual = request.fingerprint()
    if actual != declared:
        raise FingerprintMismatch(
            f"fingerprint mismatch: payload declares {declared[:12]}..., "
            f"decoded request hashes to {actual[:12]}... (codec drift?)"
        )
    return request, actual, bool(payload.get("use_store", True))


def encode_artifact(artifact: RunArtifact) -> dict:
    """The wire form of a resolved artifact."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": "run_artifact",
        "fingerprint": artifact.fingerprint,
        "source": artifact.source,
        "elapsed_s": artifact.elapsed_s,
        "result": artifact.result.to_dict(),
    }


def decode_artifact(payload: Any) -> RunArtifact:
    """Rebuild a :class:`RunArtifact` from its wire form."""
    payload = _check_envelope(payload, "run_artifact")
    try:
        result = RunResult.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"undecodable artifact result: {error}") from None
    return RunArtifact(
        fingerprint=payload.get("fingerprint", ""),
        result=result,
        source=payload.get("source", "service"),
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
    )


def encode_pending(fingerprint: str) -> dict:
    """The ``202``/stream payload for a run still executing."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": "pending",
        "fingerprint": fingerprint,
    }


def encode_error(
    message: str, fingerprint: str | None = None, status: int = 400
) -> dict:
    """An error payload (also used per-line on the stream endpoint)."""
    payload = {
        "wire_version": WIRE_VERSION,
        "kind": "error",
        "error": message,
        "status": status,
    }
    if fingerprint is not None:
        payload["fingerprint"] = fingerprint
    return payload
