"""Cross-run comparison metrics and table formatting.

The paper's figures report *normalized* quantities: cost normalized by
the worst method (Fig. 1), response time normalized by the worst case
among methods (Fig. 3), pairwise improvement percentages (Figs. 4-6).
These helpers compute them from a set of :class:`RunResult`.

Multi-seed replication support: :func:`aggregate_replicates` reduces a
set of same-policy runs over different seeds to mean / 95 % CI pairs
per headline metric, and :func:`format_replicated_comparison` renders
the replicated four-method table the orchestrator's ``--seeds N`` path
produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.results import RunResult

#: z-value of the normal 95 % confidence interval.
_Z_95 = 1.959963984540054


def weighted_percentile(values, counts, percentile: float) -> float:
    """Percentile of the multiset where ``values[i]`` repeats ``counts[i]``.

    Exactly ``np.percentile(np.repeat(values, counts), percentile)``
    (linear interpolation) without materializing the expansion -- the
    event driver's request ledger stores one ``(latency, count)`` row
    per (slot, DC) for millions of simulated requests, so tail
    percentiles must come from the weighted form.  Bit-exactness with
    numpy matters for ledger round-trips: the two interpolation terms
    below mirror numpy's ``_lerp`` branch (it switches formula at
    ``gamma >= 0.5`` to stay monotone), so results agree to the last
    ulp (``tests/property`` pins this against expanded arrays).
    """
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    values = np.asarray(values, dtype=float)
    counts = np.asarray(counts, dtype=np.int64)
    if values.shape != counts.shape or values.ndim != 1:
        raise ValueError("values and counts must be equal-length 1-D")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    order = np.argsort(values, kind="stable")
    values = values[order]
    counts = counts[order]
    keep = counts > 0
    values = values[keep]
    cumulative = np.cumsum(counts[keep])
    if cumulative.size == 0:
        raise ValueError("weighted_percentile needs at least one sample")
    n = int(cumulative[-1])
    rank = (n - 1) * (percentile / 100.0)
    lo_index = int(np.floor(rank))
    hi_index = min(lo_index + 1, n - 1)
    gamma = rank - lo_index
    lo = values[np.searchsorted(cumulative, lo_index, side="right")]
    hi = values[np.searchsorted(cumulative, hi_index, side="right")]
    diff = hi - lo
    result = lo + diff * gamma
    if gamma >= 0.5:
        result = hi - diff * (1.0 - gamma)
    return float(result)


def normalized_costs(results: list[RunResult]) -> dict[str, float]:
    """Fig. 1 quantity: cost / worst-method cost, per policy.

    When the worst cost is 0 (all-green scenarios: every policy ran
    the week without buying grid energy) all policies are tied at the
    worst case, so each reports 1.0 -- not 0.0, which would read as
    "infinitely better" than a zero-cost baseline.
    """
    if not results:
        return {}
    worst = max(result.total_grid_cost_eur() for result in results)
    if worst <= 0:
        return {result.policy_name: 1.0 for result in results}
    return {
        result.policy_name: result.total_grid_cost_eur() / worst
        for result in results
    }


def improvement_pct(baseline: float, candidate: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` (%).

    Positive means the candidate is lower/better for cost-like metrics.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - candidate) / baseline


def cost_improvements(
    results: list[RunResult], reference: str = "Proposed"
) -> dict[str, float]:
    """Cost savings (%) of ``reference`` vs every other policy."""
    by_name = {result.policy_name: result for result in results}
    if reference not in by_name:
        raise KeyError(f"no run named {reference!r}")
    ref_cost = by_name[reference].total_grid_cost_eur()
    return {
        name: improvement_pct(result.total_grid_cost_eur(), ref_cost)
        for name, result in by_name.items()
        if name != reference
    }


def energy_improvements(
    results: list[RunResult], reference: str = "Proposed"
) -> dict[str, float]:
    """Energy savings (%) of ``reference`` vs every other policy."""
    by_name = {result.policy_name: result for result in results}
    if reference not in by_name:
        raise KeyError(f"no run named {reference!r}")
    ref = by_name[reference].total_facility_energy_joules()
    return {
        name: improvement_pct(result.total_facility_energy_joules(), ref)
        for name, result in by_name.items()
        if name != reference
    }


def performance_improvements(
    results: list[RunResult],
    reference: str = "Proposed",
    percentile: float = 99.0,
) -> dict[str, float]:
    """Worst-case response-time improvement (%) of ``reference``.

    The paper judges performance by the SLA-relevant worst case; a
    high percentile is used instead of the literal maximum to keep the
    metric stable across seeds.
    """
    by_name = {result.policy_name: result for result in results}
    if reference not in by_name:
        raise KeyError(f"no run named {reference!r}")
    ref = by_name[reference].percentile_response_s(percentile)
    return {
        name: improvement_pct(result.percentile_response_s(percentile), ref)
        for name, result in by_name.items()
        if name != reference
    }


def response_time_pdf(
    samples: np.ndarray, bins: int = 40, upper: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 3 quantity: (bin centers, probability density).

    ``upper`` normalizes the samples by a common worst case (use the
    max across all methods to match the paper's normalization).
    Samples above ``upper`` clip to 1.0 -- the paper's
    worst-case-normalized axis ends at 1, and dropping them instead
    would leave a "density" that no longer integrates to 1.  An
    ``upper`` of 0.0 is an explicit (degenerate) scale, not "unset";
    non-positive scales fall back to 1.0.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return np.zeros(0), np.zeros(0)
    scale = float(samples.max()) if upper is None else upper
    if scale <= 0:
        scale = 1.0
    normalized = np.minimum(samples / scale, 1.0)
    density, edges = np.histogram(normalized, bins=bins, range=(0.0, 1.0), density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


@dataclass(frozen=True)
class MeanCI:
    """Mean and symmetric 95 % confidence half-width of replicates."""

    mean: float
    ci95: float
    n: int

    def __str__(self) -> str:
        """``mean +- ci`` rendering used by the replicated tables."""
        return f"{self.mean:.4g} +- {self.ci95:.2g}"


def mean_ci(values) -> MeanCI:
    """Normal-approximation mean / 95 % CI of a sample.

    With a single replicate the half-width is 0 (no spread information);
    the sample standard deviation uses ``ddof=1`` otherwise.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("mean_ci needs at least one value")
    if array.size == 1:
        return MeanCI(mean=float(array[0]), ci95=0.0, n=1)
    half = _Z_95 * float(array.std(ddof=1)) / float(np.sqrt(array.size))
    return MeanCI(mean=float(array.mean()), ci95=half, n=int(array.size))


#: The headline metrics replicated tables aggregate, in table order.
REPLICATE_METRICS = (
    "cost_eur",
    "energy_gj",
    "mean_rt_s",
    "p99_rt_s",
    "migrations",
)


def _metrics_of(result: RunResult) -> dict[str, float]:
    summary = result.summary()
    return {
        "cost_eur": float(summary["cost_eur"]),
        "energy_gj": float(summary["energy_gj"]),
        "mean_rt_s": float(summary["mean_rt_s"]),
        "p99_rt_s": result.percentile_response_s(99.0),
        "migrations": float(summary["migrations"]),
    }


def aggregate_replicates(results: list[RunResult]) -> dict[str, MeanCI]:
    """Mean / 95 % CI per headline metric over same-policy replicates.

    Parameters
    ----------
    results:
        Runs of one policy over one configuration shape, differing only
        in seed.  All replicates must agree on the policy name.
    """
    if not results:
        raise ValueError("aggregate_replicates needs at least one run")
    names = {result.policy_name for result in results}
    if len(names) != 1:
        raise ValueError(f"replicates mix policies: {sorted(names)}")
    rows = [_metrics_of(result) for result in results]
    return {
        metric: mean_ci(row[metric] for row in rows)
        for metric in REPLICATE_METRICS
    }


def format_replicated_comparison(
    replicates: dict[str, list[RunResult]],
) -> str:
    """Multi-seed comparison table: ``mean +- ci`` per policy/metric.

    Parameters
    ----------
    replicates:
        Policy name -> same-policy runs over different seeds (the shape
        returned by the orchestrator's replicated comparison).
    """
    header = (
        f"{'policy':<12} {'n':>3} {'cost EUR':>22} {'energy GJ':>22} "
        f"{'mean RT s':>22} {'p99 RT s':>22} {'migs':>16}"
    )
    lines = [header, "-" * len(header)]
    for name, results in replicates.items():
        stats = aggregate_replicates(results)
        lines.append(
            f"{name:<12} {stats['cost_eur'].n:>3} "
            f"{str(stats['cost_eur']):>22} "
            f"{str(stats['energy_gj']):>22} "
            f"{str(stats['mean_rt_s']):>22} "
            f"{str(stats['p99_rt_s']):>22} "
            f"{str(stats['migrations']):>16}"
        )
    return "\n".join(lines)


def format_comparison(results: list[RunResult]) -> str:
    """Multi-line table of the headline metrics per policy."""
    header = (
        f"{'policy':<12} {'cost EUR':>10} {'norm':>6} {'energy GJ':>10} "
        f"{'mean RT s':>10} {'p99 RT s':>9} {'worst RT s':>11} {'migs':>6}"
    )
    lines = [header, "-" * len(header)]
    norms = normalized_costs(results)
    for result in results:
        summary = result.summary()
        lines.append(
            f"{summary['policy']:<12} "
            f"{summary['cost_eur']:>10.2f} "
            f"{norms[summary['policy']]:>6.3f} "
            f"{summary['energy_gj']:>10.3f} "
            f"{summary['mean_rt_s']:>10.4f} "
            f"{result.percentile_response_s(99.0):>9.4f} "
            f"{summary['worst_rt_s']:>11.4f} "
            f"{summary['migrations']:>6d}"
        )
    return "\n".join(lines)
