"""Cross-run comparison metrics and table formatting.

The paper's figures report *normalized* quantities: cost normalized by
the worst method (Fig. 1), response time normalized by the worst case
among methods (Fig. 3), pairwise improvement percentages (Figs. 4-6).
These helpers compute them from a set of :class:`RunResult`.
"""

from __future__ import annotations

import numpy as np

from repro.sim.results import RunResult


def normalized_costs(results: list[RunResult]) -> dict[str, float]:
    """Fig. 1 quantity: cost / worst-method cost, per policy."""
    if not results:
        return {}
    worst = max(result.total_grid_cost_eur() for result in results)
    if worst <= 0:
        return {result.policy_name: 0.0 for result in results}
    return {
        result.policy_name: result.total_grid_cost_eur() / worst
        for result in results
    }


def improvement_pct(baseline: float, candidate: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` (%).

    Positive means the candidate is lower/better for cost-like metrics.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - candidate) / baseline


def cost_improvements(
    results: list[RunResult], reference: str = "Proposed"
) -> dict[str, float]:
    """Cost savings (%) of ``reference`` vs every other policy."""
    by_name = {result.policy_name: result for result in results}
    if reference not in by_name:
        raise KeyError(f"no run named {reference!r}")
    ref_cost = by_name[reference].total_grid_cost_eur()
    return {
        name: improvement_pct(result.total_grid_cost_eur(), ref_cost)
        for name, result in by_name.items()
        if name != reference
    }


def energy_improvements(
    results: list[RunResult], reference: str = "Proposed"
) -> dict[str, float]:
    """Energy savings (%) of ``reference`` vs every other policy."""
    by_name = {result.policy_name: result for result in results}
    if reference not in by_name:
        raise KeyError(f"no run named {reference!r}")
    ref = by_name[reference].total_facility_energy_joules()
    return {
        name: improvement_pct(result.total_facility_energy_joules(), ref)
        for name, result in by_name.items()
        if name != reference
    }


def performance_improvements(
    results: list[RunResult],
    reference: str = "Proposed",
    percentile: float = 99.0,
) -> dict[str, float]:
    """Worst-case response-time improvement (%) of ``reference``.

    The paper judges performance by the SLA-relevant worst case; a
    high percentile is used instead of the literal maximum to keep the
    metric stable across seeds.
    """
    by_name = {result.policy_name: result for result in results}
    if reference not in by_name:
        raise KeyError(f"no run named {reference!r}")
    ref = by_name[reference].percentile_response_s(percentile)
    return {
        name: improvement_pct(result.percentile_response_s(percentile), ref)
        for name, result in by_name.items()
        if name != reference
    }


def response_time_pdf(
    samples: np.ndarray, bins: int = 40, upper: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 3 quantity: (bin centers, probability density).

    ``upper`` normalizes the samples by a common worst case (use the
    max across all methods to match the paper's normalization).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return np.zeros(0), np.zeros(0)
    scale = upper if upper else float(samples.max())
    if scale <= 0:
        scale = 1.0
    normalized = samples / scale
    density, edges = np.histogram(normalized, bins=bins, range=(0.0, 1.0), density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def format_comparison(results: list[RunResult]) -> str:
    """Multi-line table of the headline metrics per policy."""
    header = (
        f"{'policy':<12} {'cost EUR':>10} {'norm':>6} {'energy GJ':>10} "
        f"{'mean RT s':>10} {'p99 RT s':>9} {'worst RT s':>11} {'migs':>6}"
    )
    lines = [header, "-" * len(header)]
    norms = normalized_costs(results)
    for result in results:
        summary = result.summary()
        lines.append(
            f"{summary['policy']:<12} "
            f"{summary['cost_eur']:>10.2f} "
            f"{norms[summary['policy']]:>6.3f} "
            f"{summary['energy_gj']:>10.3f} "
            f"{summary['mean_rt_s']:>10.4f} "
            f"{result.percentile_response_s(99.0):>9.4f} "
            f"{summary['worst_rt_s']:>11.4f} "
            f"{summary['migrations']:>6d}"
        )
    return "\n".join(lines)
