"""Per-slot records and aggregate run results.

A :class:`RunResult` is the unit every experiment and benchmark
consumes: it carries one :class:`SlotRecord` per simulated hour and
exposes the aggregates the paper's figures are built from --
operational cost (Fig. 1), hourly/total energy (Fig. 2) and the
response-time distribution (Fig. 3).

Every record type round-trips losslessly through plain dictionaries
(``to_dict`` / ``from_dict``): all fields are Python floats/ints, so
JSON (which preserves doubles exactly via shortest-repr) reproduces a
run bit-for-bit.  The orchestrator's persistent result store
(:mod:`repro.experiments.orchestrator`) relies on this.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.green import GreenSlotResult
from repro.units import joules_to_gj

#: Response-time percentiles a headline projection carries verbatim.
#: Any other percentile requires the full ledger.
HEADLINE_PERCENTILES = (95.0, 99.0)

#: Per-request latency percentiles a headline projection carries
#: (event-engine runs only; ``None`` on slot-engine ledgers).
REQUEST_PERCENTILES = (50.0, 99.0, 99.9)

#: Sentinel distinguishing "key absent from the headline" (an old
#: producer that predates request ledgers -- upgrade to the full
#: result) from "key present with value None" (a slot-engine run: the
#: ledger genuinely does not exist -- answer None, no upgrade).
_MISSING = object()


@dataclass
class DCSlotRecord:
    """One DC's ledger for one slot.

    Attributes
    ----------
    green:
        Energy-source ledger from the green controller.
    it_energy_joules:
        IT-only energy (facility energy divided by the PUE path).
    active_servers:
        Powered-on servers this slot.
    response_latency_s:
        Eq. 1 worst-case latency of this DC as a data destination.
    receiving_vms:
        VMs in this DC that waited for data this slot.
    """

    green: GreenSlotResult
    it_energy_joules: float
    active_servers: int
    response_latency_s: float
    receiving_vms: int

    def to_dict(self) -> dict:
        """Plain-dict form (nested green ledger included)."""
        payload = dataclasses.asdict(self)
        payload["green"] = dataclasses.asdict(self.green)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DCSlotRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        fields = dict(payload)
        fields["green"] = GreenSlotResult(**fields["green"])
        return cls(**fields)


@dataclass
class SlotRecord:
    """Fleet-wide ledger for one slot."""

    slot: int
    n_vms: int
    migrations: int
    migration_volume_mb: float
    dc_records: list[DCSlotRecord] = field(default_factory=list)

    @property
    def grid_cost_eur(self) -> float:
        """Fleet grid cost this slot."""
        return sum(record.green.grid_cost_eur for record in self.dc_records)

    @property
    def facility_energy_joules(self) -> float:
        """Fleet facility energy this slot."""
        return sum(record.green.facility_energy for record in self.dc_records)

    @property
    def grid_energy_joules(self) -> float:
        """Fleet grid draw this slot (incl. battery charging)."""
        return sum(record.green.grid_energy for record in self.dc_records)

    def response_samples(self) -> np.ndarray:
        """Per-VM response-time samples for this slot (seconds)."""
        parts = [
            np.full(record.receiving_vms, record.response_latency_s)
            for record in self.dc_records
            if record.receiving_vms > 0
        ]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def to_dict(self) -> dict:
        """Plain-dict form with one entry per DC record."""
        return {
            "slot": self.slot,
            "n_vms": self.n_vms,
            "migrations": self.migrations,
            "migration_volume_mb": self.migration_volume_mb,
            "dc_records": [record.to_dict() for record in self.dc_records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SlotRecord":
        """Rebuild a slot record from :meth:`to_dict` output."""
        fields = dict(payload)
        fields["dc_records"] = [
            DCSlotRecord.from_dict(record) for record in fields["dc_records"]
        ]
        return cls(**fields)


@dataclass
class RunResult:
    """Complete output of one (config, policy) simulation run."""

    policy_name: str
    config_name: str
    slots: list[SlotRecord] = field(default_factory=list)
    #: Per-request latency ledger, event-engine runs only: one
    #: ``[slot, dc_index, latency_s, count]`` row per (slot, DC) batch
    #: of simulated requests.  ``None`` on slot-engine runs -- the slot
    #: abstraction has no request stream -- and the percentile
    #: accessors degrade to ``None`` accordingly.
    requests: list[list] | None = None

    @property
    def horizon(self) -> int:
        """Number of simulated slots."""
        return len(self.slots)

    # -- Fig. 1: operational cost ------------------------------------
    def total_grid_cost_eur(self) -> float:
        """Operational cost of the whole run (EUR)."""
        return sum(slot.grid_cost_eur for slot in self.slots)

    def hourly_cost_eur(self) -> np.ndarray:
        """Grid cost per slot."""
        return np.array([slot.grid_cost_eur for slot in self.slots])

    # -- Fig. 2: energy ------------------------------------------------
    def total_facility_energy_joules(self) -> float:
        """Total facility energy over the run."""
        return sum(slot.facility_energy_joules for slot in self.slots)

    def total_energy_gj(self) -> float:
        """Total facility energy in GJ (the Fig. 2 unit)."""
        return joules_to_gj(self.total_facility_energy_joules())

    def hourly_energy_joules(self) -> np.ndarray:
        """Facility energy per slot (the Fig. 2 series)."""
        return np.array([slot.facility_energy_joules for slot in self.slots])

    def total_grid_energy_joules(self) -> float:
        """Total grid draw over the run."""
        return sum(slot.grid_energy_joules for slot in self.slots)

    def renewable_utilization(self) -> float:
        """Fraction of generated PV energy actually used or stored."""
        generated = used = 0.0
        for slot in self.slots:
            for record in slot.dc_records:
                generated += record.green.pv_generated
                used += record.green.pv_used + record.green.pv_stored
        return used / generated if generated > 0 else 0.0

    # -- Fig. 3: response time ----------------------------------------
    def response_samples(self) -> np.ndarray:
        """All per-VM response-time samples of the run (seconds)."""
        parts = [slot.response_samples() for slot in self.slots]
        parts = [part for part in parts if part.size]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def mean_response_s(self) -> float:
        """Mean per-VM response time."""
        samples = self.response_samples()
        return float(samples.mean()) if samples.size else 0.0

    def percentile_response_s(self, percentile: float) -> float:
        """Percentile of the per-VM response-time distribution."""
        samples = self.response_samples()
        return float(np.percentile(samples, percentile)) if samples.size else 0.0

    def worst_response_s(self) -> float:
        """Worst-case response time (the SLA quantity of Section V-B3)."""
        samples = self.response_samples()
        return float(samples.max()) if samples.size else 0.0

    # -- per-request latency tail (event engine only) ------------------
    def total_requests(self) -> int | None:
        """Simulated user requests over the run; ``None`` without a ledger."""
        if self.requests is None:
            return None
        return int(sum(row[3] for row in self.requests))

    def request_percentile_s(self, percentile: float) -> float | None:
        """Percentile of the per-request latency distribution.

        ``None`` on slot-engine runs (no request ledger); ``0.0`` for
        an event-engine run that happened to serve zero requests.
        """
        if self.requests is None:
            return None
        if not self.requests:
            return 0.0
        from repro.sim.metrics import weighted_percentile

        return weighted_percentile(
            np.array([row[2] for row in self.requests]),
            np.array([row[3] for row in self.requests]),
            percentile,
        )

    def p50_request_s(self) -> float | None:
        """Median per-request latency (event engine only)."""
        return self.request_percentile_s(50.0)

    def p99_request_s(self) -> float | None:
        """99th-percentile per-request latency (event engine only)."""
        return self.request_percentile_s(99.0)

    def p999_request_s(self) -> float | None:
        """99.9th-percentile per-request latency (event engine only)."""
        return self.request_percentile_s(99.9)

    # -- misc -----------------------------------------------------------
    def total_migrations(self) -> int:
        """Inter-DC migrations executed over the run."""
        return sum(slot.migrations for slot in self.slots)

    def total_migration_volume_mb(self) -> float:
        """Total migrated image volume (MB)."""
        return sum(slot.migration_volume_mb for slot in self.slots)

    def mean_active_servers(self) -> float:
        """Average powered-on servers per slot (fleet-wide)."""
        if not self.slots:
            return 0.0
        return float(
            np.mean(
                [
                    sum(record.active_servers for record in slot.dc_records)
                    for slot in self.slots
                ]
            )
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form of the whole run (JSON-serializable).

        The request ledger only appears when one exists, so
        slot-engine dumps stay byte-identical to their pre-event-core
        form (stored fingerprinted artifacts survive the upgrade).
        """
        payload = {
            "policy_name": self.policy_name,
            "config_name": self.config_name,
            "slots": [slot.to_dict() for slot in self.slots],
        }
        if self.requests is not None:
            payload["requests"] = [list(row) for row in self.requests]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        """Rebuild a run from :meth:`to_dict` output."""
        return cls(
            policy_name=payload["policy_name"],
            config_name=payload["config_name"],
            slots=[SlotRecord.from_dict(slot) for slot in payload["slots"]],
            requests=payload.get("requests"),
        )

    def summary(self) -> dict:
        """One-line dictionary for tables and logs."""
        return {
            "policy": self.policy_name,
            "config": self.config_name,
            "cost_eur": self.total_grid_cost_eur(),
            "energy_gj": self.total_energy_gj(),
            "grid_energy_gj": joules_to_gj(self.total_grid_energy_joules()),
            "mean_rt_s": self.mean_response_s(),
            "p95_rt_s": self.percentile_response_s(95.0),
            "worst_rt_s": self.worst_response_s(),
            "migrations": self.total_migrations(),
            "mean_active_servers": self.mean_active_servers(),
            "renewable_utilization": self.renewable_utilization(),
        }

    def headline(self) -> dict:
        """The headline-metrics projection of this run.

        A strict subset of the information in :meth:`to_dict`: every
        value is computed from the full slot ledger by the aggregate
        accessors above, so a consumer reading a headline sees exactly
        the numbers it would have computed from the full result.  The
        experiment service ships this block for ``detail=headline``
        responses (:class:`HeadlineResult` is the consumer-side view).
        """
        return {
            "policy_name": self.policy_name,
            "config_name": self.config_name,
            "horizon": self.horizon,
            "total_grid_cost_eur": self.total_grid_cost_eur(),
            "total_facility_energy_joules": (
                self.total_facility_energy_joules()
            ),
            "total_energy_gj": self.total_energy_gj(),
            "total_grid_energy_joules": self.total_grid_energy_joules(),
            "renewable_utilization": self.renewable_utilization(),
            "mean_response_s": self.mean_response_s(),
            "worst_response_s": self.worst_response_s(),
            "total_migrations": self.total_migrations(),
            "total_migration_volume_mb": self.total_migration_volume_mb(),
            "mean_active_servers": self.mean_active_servers(),
            **{
                f"p{percentile:g}_response_s": self.percentile_response_s(
                    percentile
                )
                for percentile in HEADLINE_PERCENTILES
            },
            "total_requests": self.total_requests(),
            **{
                f"p{percentile:g}_request_s": self.request_percentile_s(
                    percentile
                )
                for percentile in REQUEST_PERCENTILES
            },
        }


class HeadlineResult:
    """A run's headline metrics, standing in for a :class:`RunResult`.

    Exposes the same aggregate accessors (``total_grid_cost_eur``,
    ``total_energy_gj``, ``percentile_response_s`` for the
    :data:`HEADLINE_PERCENTILES`, ...) backed by a
    :meth:`RunResult.headline` dictionary instead of the full slot
    ledger -- the experiment service's ``detail=headline`` wire form,
    ~two orders of magnitude smaller than a full ledger.

    Anything the headline cannot answer (``slots``, per-slot series,
    arbitrary percentiles) upgrades lazily: when the projection was
    built with a ``fetch_full`` callback (the service client supplies
    one), the first such access fetches the full ledger once and
    delegates to it from then on; without a callback the access raises
    so a consumer that silently needed ``detail=full`` fails loudly.
    """

    def __init__(
        self,
        headline: dict,
        fetch_full: Callable[[], "RunResult"] | None = None,
    ) -> None:
        self._headline = dict(headline)
        self._fetch_full = fetch_full
        self._full_result: RunResult | None = None

    # -- identity ------------------------------------------------------
    @property
    def policy_name(self) -> str:
        return self._headline["policy_name"]

    @property
    def config_name(self) -> str:
        return self._headline["config_name"]

    @property
    def horizon(self) -> int:
        return int(self._headline["horizon"])

    # -- headline accessors (mirror RunResult's aggregate API) ---------
    def total_grid_cost_eur(self) -> float:
        """Fleet grid cost over the horizon, EUR."""
        return self._headline["total_grid_cost_eur"]

    def total_facility_energy_joules(self) -> float:
        """Total facility-side energy, joules."""
        return self._headline["total_facility_energy_joules"]

    def total_energy_gj(self) -> float:
        """Total facility-side energy, gigajoules."""
        return self._headline["total_energy_gj"]

    def total_grid_energy_joules(self) -> float:
        """Energy drawn from the grid, joules."""
        return self._headline["total_grid_energy_joules"]

    def renewable_utilization(self) -> float:
        """Fraction of demand met by renewables."""
        return self._headline["renewable_utilization"]

    def mean_response_s(self) -> float:
        """Mean VM response time, seconds."""
        return self._headline["mean_response_s"]

    def worst_response_s(self) -> float:
        """Worst observed VM response time, seconds."""
        return self._headline["worst_response_s"]

    def percentile_response_s(self, percentile: float) -> float:
        """Response-time percentile; non-headline percentiles upgrade."""
        key = f"p{float(percentile):g}_response_s"
        value = self._headline.get(key)
        if value is not None:
            return value
        return self.full().percentile_response_s(percentile)

    def total_requests(self) -> int | None:
        """Simulated request count; ``None`` on slot-engine runs.

        A headline lacking the key entirely (produced before request
        ledgers existed) upgrades to the full result; a present-but-
        ``None`` value is authoritative -- the run has no ledger and
        fetching the full result could not change that.
        """
        value = self._headline.get("total_requests", _MISSING)
        if value is _MISSING:
            return self.full().total_requests()
        return None if value is None else int(value)

    def request_percentile_s(self, percentile: float) -> float | None:
        """Per-request latency percentile, mirroring the RunResult rule."""
        key = f"p{float(percentile):g}_request_s"
        value = self._headline.get(key, _MISSING)
        if value is not _MISSING:
            return value
        if "total_requests" in self._headline:
            # A request-aware headline without this percentile: answer
            # from the full ledger only when one exists.
            if self._headline["total_requests"] is None:
                return None
        return self.full().request_percentile_s(percentile)

    def p50_request_s(self) -> float | None:
        """Median per-request latency (event engine only)."""
        return self.request_percentile_s(50.0)

    def p99_request_s(self) -> float | None:
        """99th-percentile per-request latency (event engine only)."""
        return self.request_percentile_s(99.0)

    def p999_request_s(self) -> float | None:
        """99.9th-percentile per-request latency (event engine only)."""
        return self.request_percentile_s(99.9)

    def total_migrations(self) -> int:
        """Count of VM migrations over the horizon."""
        return int(self._headline["total_migrations"])

    def total_migration_volume_mb(self) -> float:
        """Total migrated image volume, MB."""
        return self._headline["total_migration_volume_mb"]

    def mean_active_servers(self) -> float:
        """Mean count of powered-on servers."""
        return self._headline["mean_active_servers"]

    def headline(self) -> dict:
        """The projection itself (already computed -- no upgrade)."""
        return dict(self._headline)

    # -- lazy upgrade to the full ledger -------------------------------
    def full(self) -> RunResult:
        """The full :class:`RunResult`, fetched on first demand."""
        if self._full_result is None:
            if self._fetch_full is None:
                raise ValueError(
                    "this result is a detail=headline projection with no "
                    "way back to the full ledger; request detail='full'"
                )
            self._full_result = self._fetch_full()
        return self._full_result

    def __getattr__(self, name: str):
        # Anything beyond the headline surface (slots, per-slot
        # series, to_dict, summary, ...) answers from the full ledger.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.full(), name)

    def __repr__(self) -> str:
        state = "full" if self._full_result is not None else "headline"
        return (
            f"HeadlineResult({self.policy_name!r}, {self.config_name!r}, "
            f"detail={state})"
        )
