"""Per-slot records and aggregate run results.

A :class:`RunResult` is the unit every experiment and benchmark
consumes: it carries one :class:`SlotRecord` per simulated hour and
exposes the aggregates the paper's figures are built from --
operational cost (Fig. 1), hourly/total energy (Fig. 2) and the
response-time distribution (Fig. 3).

Every record type round-trips losslessly through plain dictionaries
(``to_dict`` / ``from_dict``): all fields are Python floats/ints, so
JSON (which preserves doubles exactly via shortest-repr) reproduces a
run bit-for-bit.  The orchestrator's persistent result store
(:mod:`repro.experiments.orchestrator`) relies on this.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.green import GreenSlotResult
from repro.units import joules_to_gj


@dataclass
class DCSlotRecord:
    """One DC's ledger for one slot.

    Attributes
    ----------
    green:
        Energy-source ledger from the green controller.
    it_energy_joules:
        IT-only energy (facility energy divided by the PUE path).
    active_servers:
        Powered-on servers this slot.
    response_latency_s:
        Eq. 1 worst-case latency of this DC as a data destination.
    receiving_vms:
        VMs in this DC that waited for data this slot.
    """

    green: GreenSlotResult
    it_energy_joules: float
    active_servers: int
    response_latency_s: float
    receiving_vms: int

    def to_dict(self) -> dict:
        """Plain-dict form (nested green ledger included)."""
        payload = dataclasses.asdict(self)
        payload["green"] = dataclasses.asdict(self.green)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DCSlotRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        fields = dict(payload)
        fields["green"] = GreenSlotResult(**fields["green"])
        return cls(**fields)


@dataclass
class SlotRecord:
    """Fleet-wide ledger for one slot."""

    slot: int
    n_vms: int
    migrations: int
    migration_volume_mb: float
    dc_records: list[DCSlotRecord] = field(default_factory=list)

    @property
    def grid_cost_eur(self) -> float:
        """Fleet grid cost this slot."""
        return sum(record.green.grid_cost_eur for record in self.dc_records)

    @property
    def facility_energy_joules(self) -> float:
        """Fleet facility energy this slot."""
        return sum(record.green.facility_energy for record in self.dc_records)

    @property
    def grid_energy_joules(self) -> float:
        """Fleet grid draw this slot (incl. battery charging)."""
        return sum(record.green.grid_energy for record in self.dc_records)

    def response_samples(self) -> np.ndarray:
        """Per-VM response-time samples for this slot (seconds)."""
        parts = [
            np.full(record.receiving_vms, record.response_latency_s)
            for record in self.dc_records
            if record.receiving_vms > 0
        ]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def to_dict(self) -> dict:
        """Plain-dict form with one entry per DC record."""
        return {
            "slot": self.slot,
            "n_vms": self.n_vms,
            "migrations": self.migrations,
            "migration_volume_mb": self.migration_volume_mb,
            "dc_records": [record.to_dict() for record in self.dc_records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SlotRecord":
        """Rebuild a slot record from :meth:`to_dict` output."""
        fields = dict(payload)
        fields["dc_records"] = [
            DCSlotRecord.from_dict(record) for record in fields["dc_records"]
        ]
        return cls(**fields)


@dataclass
class RunResult:
    """Complete output of one (config, policy) simulation run."""

    policy_name: str
    config_name: str
    slots: list[SlotRecord] = field(default_factory=list)

    @property
    def horizon(self) -> int:
        """Number of simulated slots."""
        return len(self.slots)

    # -- Fig. 1: operational cost ------------------------------------
    def total_grid_cost_eur(self) -> float:
        """Operational cost of the whole run (EUR)."""
        return sum(slot.grid_cost_eur for slot in self.slots)

    def hourly_cost_eur(self) -> np.ndarray:
        """Grid cost per slot."""
        return np.array([slot.grid_cost_eur for slot in self.slots])

    # -- Fig. 2: energy ------------------------------------------------
    def total_facility_energy_joules(self) -> float:
        """Total facility energy over the run."""
        return sum(slot.facility_energy_joules for slot in self.slots)

    def total_energy_gj(self) -> float:
        """Total facility energy in GJ (the Fig. 2 unit)."""
        return joules_to_gj(self.total_facility_energy_joules())

    def hourly_energy_joules(self) -> np.ndarray:
        """Facility energy per slot (the Fig. 2 series)."""
        return np.array([slot.facility_energy_joules for slot in self.slots])

    def total_grid_energy_joules(self) -> float:
        """Total grid draw over the run."""
        return sum(slot.grid_energy_joules for slot in self.slots)

    def renewable_utilization(self) -> float:
        """Fraction of generated PV energy actually used or stored."""
        generated = used = 0.0
        for slot in self.slots:
            for record in slot.dc_records:
                generated += record.green.pv_generated
                used += record.green.pv_used + record.green.pv_stored
        return used / generated if generated > 0 else 0.0

    # -- Fig. 3: response time ----------------------------------------
    def response_samples(self) -> np.ndarray:
        """All per-VM response-time samples of the run (seconds)."""
        parts = [slot.response_samples() for slot in self.slots]
        parts = [part for part in parts if part.size]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def mean_response_s(self) -> float:
        """Mean per-VM response time."""
        samples = self.response_samples()
        return float(samples.mean()) if samples.size else 0.0

    def percentile_response_s(self, percentile: float) -> float:
        """Percentile of the per-VM response-time distribution."""
        samples = self.response_samples()
        return float(np.percentile(samples, percentile)) if samples.size else 0.0

    def worst_response_s(self) -> float:
        """Worst-case response time (the SLA quantity of Section V-B3)."""
        samples = self.response_samples()
        return float(samples.max()) if samples.size else 0.0

    # -- misc -----------------------------------------------------------
    def total_migrations(self) -> int:
        """Inter-DC migrations executed over the run."""
        return sum(slot.migrations for slot in self.slots)

    def total_migration_volume_mb(self) -> float:
        """Total migrated image volume (MB)."""
        return sum(slot.migration_volume_mb for slot in self.slots)

    def mean_active_servers(self) -> float:
        """Average powered-on servers per slot (fleet-wide)."""
        if not self.slots:
            return 0.0
        return float(
            np.mean(
                [
                    sum(record.active_servers for record in slot.dc_records)
                    for slot in self.slots
                ]
            )
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form of the whole run (JSON-serializable)."""
        return {
            "policy_name": self.policy_name,
            "config_name": self.config_name,
            "slots": [slot.to_dict() for slot in self.slots],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        """Rebuild a run from :meth:`to_dict` output."""
        return cls(
            policy_name=payload["policy_name"],
            config_name=payload["config_name"],
            slots=[SlotRecord.from_dict(slot) for slot in payload["slots"]],
        )

    def summary(self) -> dict:
        """One-line dictionary for tables and logs."""
        return {
            "policy": self.policy_name,
            "config": self.config_name,
            "cost_eur": self.total_grid_cost_eur(),
            "energy_gj": self.total_energy_gj(),
            "grid_energy_gj": joules_to_gj(self.total_grid_energy_joules()),
            "mean_rt_s": self.mean_response_s(),
            "p95_rt_s": self.percentile_response_s(95.0),
            "worst_rt_s": self.worst_response_s(),
            "migrations": self.total_migrations(),
            "mean_active_servers": self.mean_active_servers(),
            "renewable_utilization": self.renewable_utilization(),
        }
