"""Hour-slotted simulation engine.

Each slot the engine (Section IV-A's protocol):

1. updates the alive VM set (Poisson arrivals / exponential departures);
2. assembles the :class:`~repro.sim.state.SlotObservation` -- the
   *previous* slot's demand traces and data volumes plus the live DC
   states -- and asks the policy for a placement;
3. replays the placement against the *realized* current-slot traces:
   per-server power at the chosen DVFS level, times the site's
   time-varying PUE, gives each DC's facility power;
4. runs the green controller over the slot (renewables, battery, grid,
   cost);
5. evaluates the response-time model: current-slot data volumes are
   aggregated per DC pair and Eq. 1 gives each destination DC's
   worst-case latency, sampled once per receiving VM.

The engine owns all mutation (battery state, forecaster history);
policies only read the observation.

Since the event-core refactor the per-slot physics and accounting live
in the driver-agnostic :class:`~repro.sim.kernel.SlotKernel`; this
module keeps the engine facade and the *slot driver* -- the reference
slot-stepped loop.  A second driver, the discrete-event
:class:`~repro.sim.events.EventCore`, advances the same kernel from a
typed event heap (``--engine event``); its slot-boundary ledgers are
byte-identical to the slot driver's because both call the identical
``observe``/``step`` kernel pair per slot.

The per-slot physics hot paths ship in two interchangeable
implementations: the original reference loops (per-server/per-VM
Python loops, one scalar green-controller pass per DC) and the
fleet-batched kernel -- one CSR membership product over the *whole*
placement for every DC's IT power
(:meth:`~repro.sim.kernel.SlotKernel._fleet_it_power`),
one batched PUE broadcast, and one struct-of-arrays green-controller
pass stepping every battery at once
(:meth:`~repro.core.green.GreenController.run_slot_fleet`).  The Eq. 1
response latencies likewise ship as dict loops and a stable-sort
grouped ``n_dcs x n_dcs`` volume matrix.  The batched paths are the
default and are *bit-identical* to the loops: every floating-point
reduction accumulates in the same order
(``tests/sim/test_engine_vectorized.py`` asserts full-run equality),
so results are independent of the ``vectorized`` flag.
"""

from __future__ import annotations

from repro.core.green import GreenController
from repro.sim.config import (
    EngineCoreConfig,
    ExperimentConfig,
    build_datacenters,
    build_latency_model,
)
from repro.sim.kernel import SlotKernel
from repro.sim.results import RunResult
from repro.sim.state import PlacementPolicy
from repro.units import SECONDS_PER_HOUR
from repro.workload.arrivals import VMPopulation
from repro.workload.materialize import materialization_key
from repro.workload.packs import LibraryWorkload, WorkloadProvider, default_pack

#: Kernel internals the facade forwards one-to-one.  The equivalence
#: tests and benchmarks address the physics through the engine
#: (``engine._fleet_it_power(...)``), which predates the kernel split;
#: keeping the surface stable means the bit-identity pins need not know
#: where the code lives.
_KERNEL_FORWARDS = frozenset(
    {
        "_demand",
        "_demand_row",
        "_demand_cache",
        "_demand_cache_slots",
        "_evict_cache",
        "_slot_volumes",
        "_level_arrays",
        "_level_cache",
        "_dc_it_power",
        "_dc_it_power_loop",
        "_dc_it_power_vectorized",
        "_fleet_it_power",
        "_response_latencies",
        "_response_latencies_loop",
        "_response_latencies_vectorized",
    }
)


class SimulationEngine:
    """Runs one policy over one configuration.

    Parameters
    ----------
    config:
        The experiment configuration (fleet, horizon, workload).
    policy:
        The placement policy under test.
    validate:
        Validate every placement against the observation (cheap; keep
        on except in micro-benchmarks).
    trace_library:
        Legacy escape hatch: a pre-built trace library (e.g. a
        :class:`~repro.workload.recorded.RecordedTraceLibrary` holding
        real DC traces), wrapped into a
        :class:`~repro.workload.packs.LibraryWorkload`.  Mutually
        exclusive with ``workload``.
    workload:
        The :class:`~repro.workload.packs.WorkloadProvider` supplying
        traces and data volumes -- typically a named, content-hashed
        :class:`~repro.workload.packs.TracePack`.  Defaults to the
        synthetic pack, which reproduces the engine's historical
        workload bit-for-bit.  The provider may also rewrite the
        config (``configure``), e.g. a scenario pack overriding the
        arrival model's archetype mix.
    clairvoyant:
        When True the observation carries the *current* slot's traces
        and volumes instead of the previous slot's -- a perfect
        load/communication forecast.  The paper's controllers plan on
        last-interval data (Section IV-A); the clairvoyant mode bounds
        what better forecasting could buy.
    vectorized:
        Use the numpy segment-sum hot paths (default).  ``False``
        selects the reference per-server/per-DC loops; both produce
        bit-identical results.
    materialization:
        Optional pre-built
        :class:`~repro.workload.materialize.WorkloadMaterialization`
        supplying the population, traces and volumes (plus a shared
        per-slot array cache) instead of building them here.  Its
        :func:`~repro.workload.materialize.materialization_key` must
        match this ``config``/``vectorized`` pair -- configs differing
        only in workload-irrelevant fields (fleet specs, tariffs, QoS)
        share materializations; it already carries its pack, so
        ``workload`` / ``trace_library`` must not also be passed.
        Purely an execution detail: runs are bit-identical with or
        without it.
    engine:
        The :class:`~repro.sim.config.EngineCoreConfig` selecting the
        driver: ``kind="slot"`` (default) steps the kernel slot by
        slot; ``kind="event"`` drains a typed event heap
        (:class:`~repro.sim.events.EventCore`) and additionally samples
        per-request latencies.  Slot-boundary ledgers are byte-identical
        either way.  Rejected with ``ValueError`` for policies that
        declare ``requires_slot_engine`` or workloads that declare
        ``supports_event_core = False``.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        policy: PlacementPolicy,
        validate: bool = True,
        trace_library=None,
        clairvoyant: bool = False,
        vectorized: bool = True,
        workload: WorkloadProvider | None = None,
        materialization=None,
        engine: EngineCoreConfig | None = None,
    ) -> None:
        if workload is not None and trace_library is not None:
            raise ValueError(
                "pass either workload or trace_library, not both"
            )
        if materialization is not None:
            if workload is not None or trace_library is not None:
                raise ValueError(
                    "materialization already carries its workload"
                )
            if materialization.vectorized != vectorized:
                raise ValueError(
                    "materialization was built with vectorized="
                    f"{materialization.vectorized}"
                )
            # The sharing contract is the key, not config equality:
            # configs differing only in workload-irrelevant fields
            # (fleet specs, tariffs, QoS -- a battery sweep) share one
            # materialization.  The engine keeps ITS config for the
            # physics and only adopts the pack's configure overrides.
            if (
                materialization_key(
                    config, materialization.pack, vectorized
                )
                != materialization.key
            ):
                raise ValueError(
                    "materialization was built for a different workload "
                    "(materialization key mismatch)"
                )
            workload = materialization.pack
            config = workload.configure(config)
        else:
            if workload is None:
                workload = (
                    LibraryWorkload(trace_library)
                    if trace_library is not None
                    else default_pack()
                )
            config = workload.configure(config)
        if engine is None:
            engine = EngineCoreConfig()
        if engine.kind == "event":
            if getattr(policy, "requires_slot_engine", False):
                raise ValueError(
                    f"policy {policy.name!r} requires the slot engine "
                    "(requires_slot_engine is set); rerun with "
                    "--engine slot"
                )
            if not getattr(workload, "supports_event_core", True):
                raise ValueError(
                    "workload "
                    f"{workload.descriptor().get('name', '?')!r} does "
                    "not support the event core yet; rerun with "
                    "--engine slot"
                )
        self.config = config
        self.policy = policy
        self.validate = validate
        self.clairvoyant = clairvoyant
        self.vectorized = vectorized
        self.workload = workload
        self.engine_config = engine
        self._materialization = materialization

        if materialization is not None:
            population = materialization.population
            traces = materialization.traces
            volumes = materialization.volumes
        else:
            population = VMPopulation.generate(
                config.arrival_model, config.horizon_slots, seed=config.seed
            )
            traces = workload.build_traces(config)
            volumes = workload.build_volumes(config, vectorized=vectorized)
        self.kernel = SlotKernel(
            config,
            population=population,
            traces=traces,
            volumes=volumes,
            latency_model=build_latency_model(config),
            green=GreenController(
                step_s=SECONDS_PER_HOUR / config.steps_per_slot
            ),
            vectorized=vectorized,
            materialization=materialization,
        )
        self.population = population
        self.traces = traces
        self.volumes = volumes
        self.latency_model = self.kernel.latency_model
        self.green = self.kernel.green

    def __getattr__(self, name: str):
        # Back-compat facade over the kernel split: the physics/cache
        # internals moved to SlotKernel but keep answering here.
        kernel = self.__dict__.get("kernel")
        if kernel is not None and name in _KERNEL_FORWARDS:
            return getattr(kernel, name)
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    # -- main loop ---------------------------------------------------------

    def run(self) -> RunResult:
        """Simulate the full horizon and return the result ledger."""
        if self.engine_config.kind == "event":
            from repro.sim.events import EventCore

            return EventCore(self).run()
        return self._run_slot_driver()

    def _run_slot_driver(self) -> RunResult:
        """The reference driver: one kernel observe/step pair per slot."""
        config = self.config
        kernel = self.kernel
        self.policy.reset()
        dcs = build_datacenters(config)
        result = RunResult(policy_name=self.policy.name, config_name=config.name)
        previous_assignment: dict[int, int] = {}

        for slot in range(config.horizon_slots):
            vms = self.population.alive(slot)
            observation = kernel.observe(
                slot,
                vms,
                previous_assignment,
                dcs,
                clairvoyant=self.clairvoyant,
            )
            placement = self.policy.place(observation)
            if self.validate:
                placement.validate(observation)

            result.slots.append(kernel.step(slot, vms, placement, dcs))
            previous_assignment = dict(placement.assignment)
            kernel._evict_cache(slot)

        return result


def run_policies(
    config: ExperimentConfig,
    policies: list[PlacementPolicy],
    validate: bool = True,
    trace_library=None,
    clairvoyant: bool = False,
    vectorized: bool = True,
    workload: WorkloadProvider | None = None,
    engine: EngineCoreConfig | None = None,
) -> list[RunResult]:
    """Run several policies over the *same* workload realization.

    Every engine derives its stochastic streams from ``config.seed``,
    so policies see identical VMs, traces, volumes, weather and BER --
    the paper's comparison protocol.  The engine options (``validate``,
    ``trace_library``, ``clairvoyant``, ``vectorized``, ``workload``,
    ``engine``) are forwarded to every :class:`SimulationEngine`
    constructed.
    """
    return [
        SimulationEngine(
            config,
            policy,
            validate=validate,
            trace_library=trace_library,
            clairvoyant=clairvoyant,
            vectorized=vectorized,
            workload=workload,
            engine=engine,
        ).run()
        for policy in policies
    ]
