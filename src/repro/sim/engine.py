"""Hour-slotted simulation engine.

Each slot the engine (Section IV-A's protocol):

1. updates the alive VM set (Poisson arrivals / exponential departures);
2. assembles the :class:`~repro.sim.state.SlotObservation` -- the
   *previous* slot's demand traces and data volumes plus the live DC
   states -- and asks the policy for a placement;
3. replays the placement against the *realized* current-slot traces:
   per-server power at the chosen DVFS level, times the site's
   time-varying PUE, gives each DC's facility power;
4. runs the green controller over the slot (renewables, battery, grid,
   cost);
5. evaluates the response-time model: current-slot data volumes are
   aggregated per DC pair and Eq. 1 gives each destination DC's
   worst-case latency, sampled once per receiving VM.

The engine owns all mutation (battery state, forecaster history);
policies only read the observation.
"""

from __future__ import annotations

import numpy as np

from repro.core.green import GreenController
from repro.sim.config import (
    ExperimentConfig,
    build_datacenters,
    build_latency_model,
)
from repro.sim.results import DCSlotRecord, RunResult, SlotRecord
from repro.sim.state import FleetPlacement, PlacementPolicy, SlotObservation
from repro.units import SECONDS_PER_HOUR
from repro.workload.arrivals import VMPopulation
from repro.workload.datacorr import DataCorrelationProcess
from repro.workload.traces import TraceLibrary
from repro.workload.vm import VirtualMachine


class SimulationEngine:
    """Runs one policy over one configuration.

    Parameters
    ----------
    config:
        The experiment configuration (fleet, horizon, workload).
    policy:
        The placement policy under test.
    validate:
        Validate every placement against the observation (cheap; keep
        on except in micro-benchmarks).
    trace_library:
        Optional replacement trace provider (e.g. a
        :class:`~repro.workload.recorded.RecordedTraceLibrary` holding
        real DC traces); defaults to the synthetic
        :class:`~repro.workload.traces.TraceLibrary`.
    clairvoyant:
        When True the observation carries the *current* slot's traces
        and volumes instead of the previous slot's -- a perfect
        load/communication forecast.  The paper's controllers plan on
        last-interval data (Section IV-A); the clairvoyant mode bounds
        what better forecasting could buy.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        policy: PlacementPolicy,
        validate: bool = True,
        trace_library=None,
        clairvoyant: bool = False,
    ) -> None:
        self.config = config
        self.policy = policy
        self.validate = validate
        self.clairvoyant = clairvoyant

        self.population = VMPopulation.generate(
            config.arrival_model, config.horizon_slots, seed=config.seed
        )
        self.traces = trace_library or TraceLibrary(
            steps_per_slot=config.steps_per_slot, seed=config.seed + 1
        )
        self.volumes = DataCorrelationProcess(seed=config.seed + 2)
        self.latency_model = build_latency_model(config)
        self.green = GreenController(
            step_s=SECONDS_PER_HOUR / config.steps_per_slot
        )
        self._demand_cache: dict[tuple[int, int], np.ndarray] = {}

    # -- workload access ------------------------------------------------

    def _demand_row(self, vm: VirtualMachine, slot: int) -> np.ndarray:
        key = (vm.vm_id, slot)
        row = self._demand_cache.get(key)
        if row is None:
            row = self.traces.slot_demand(vm, slot)
            self._demand_cache[key] = row
        return row

    def _demand(self, vms: list[VirtualMachine], slot: int) -> np.ndarray:
        if not vms:
            return np.zeros((0, self.config.steps_per_slot))
        return np.stack([self._demand_row(vm, slot) for vm in vms])

    def _evict_cache(self, older_than_slot: int) -> None:
        stale = [key for key in self._demand_cache if key[1] < older_than_slot]
        for key in stale:
            del self._demand_cache[key]

    # -- per-slot physics -------------------------------------------------

    def _dc_it_power(
        self,
        placement: FleetPlacement,
        dc_index: int,
        vm_rows: dict[int, int],
        demand_now: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """IT power trace (W) and active server count of one DC."""
        allocation = placement.allocations[dc_index]
        power = np.zeros(self.config.steps_per_slot)
        model = allocation.model
        for server_vms, level in zip(allocation.server_vms, allocation.frequencies):
            aggregate = np.zeros(self.config.steps_per_slot)
            for vm_id in server_vms:
                aggregate += demand_now[vm_rows[vm_id]]
            power += model.power_trace(level, aggregate)
        return power, allocation.active_servers

    def _response_latencies(
        self,
        placement: FleetPlacement,
        vms: list[VirtualMachine],
        volumes_now: np.ndarray,
        slot: int,
    ) -> list[tuple[float, int]]:
        """Eq. 1 latency and receiving-VM count per destination DC."""
        n_dcs = self.config.n_dcs
        dc_of = np.array([placement.assignment[vm.vm_id] for vm in vms], dtype=int)
        results: list[tuple[float, int]] = []
        received = volumes_now.sum(axis=0)  # MB flowing into each VM
        for dst in range(n_dcs):
            members = np.nonzero(dc_of == dst)[0]
            if members.size == 0:
                results.append((0.0, 0))
                continue
            volumes_from = {}
            for src in range(n_dcs):
                senders = np.nonzero(dc_of == src)[0]
                if senders.size == 0:
                    continue
                volume = float(volumes_now[np.ix_(senders, members)].sum())
                if volume > 0.0:
                    volumes_from[src] = volume
            latency = self.latency_model.destination_latency(
                dst, volumes_from, slot
            ).total_s
            receiving = int(np.count_nonzero(received[members] > 0.0))
            results.append((latency, receiving))
        return results

    # -- main loop ---------------------------------------------------------

    def run(self) -> RunResult:
        """Simulate the full horizon and return the result ledger."""
        config = self.config
        self.policy.reset()
        dcs = build_datacenters(config)
        result = RunResult(policy_name=self.policy.name, config_name=config.name)
        previous_assignment: dict[int, int] = {}

        for slot in range(config.horizon_slots):
            vms = self.population.alive(slot)
            vm_rows = {vm.vm_id: row for row, vm in enumerate(vms)}
            observed_slot = slot if self.clairvoyant else max(slot - 1, 0)
            demand_prev = self._demand(vms, observed_slot)
            volumes_prev = self.volumes.volumes(vms, observed_slot)

            observation = SlotObservation(
                slot=slot,
                vms=vms,
                demand_traces=demand_prev,
                volumes=volumes_prev,
                previous_assignment={
                    vm.vm_id: previous_assignment[vm.vm_id]
                    for vm in vms
                    if vm.vm_id in previous_assignment
                },
                dcs=dcs,
                latency_model=self.latency_model,
                latency_constraint_s=config.latency_constraint_s,
            )
            placement = self.policy.place(observation)
            if self.validate:
                placement.validate(observation)

            demand_now = self._demand(vms, slot)
            volumes_now = self.volumes.volumes(vms, slot)
            latencies = self._response_latencies(
                placement, vms, volumes_now.volumes, slot
            )

            slot_record = SlotRecord(
                slot=slot,
                n_vms=len(vms),
                migrations=len(placement.moves),
                migration_volume_mb=sum(move.image_mb for move in placement.moves),
            )

            times = slot * SECONDS_PER_HOUR + (
                (np.arange(config.steps_per_slot) + 0.5)
                * (SECONDS_PER_HOUR / config.steps_per_slot)
            )
            for dc in dcs:
                it_power, active = self._dc_it_power(
                    placement, dc.index, vm_rows, demand_now
                )
                facility_power = it_power * dc.spec.pue_model.pue(times)
                green = self.green.run_slot(dc, slot, facility_power)
                dc.record_slot(slot, green.facility_energy, green.pv_generated)
                latency, receiving = latencies[dc.index]
                slot_record.dc_records.append(
                    DCSlotRecord(
                        green=green,
                        it_energy_joules=float(
                            it_power.sum()
                            * (SECONDS_PER_HOUR / config.steps_per_slot)
                        ),
                        active_servers=active,
                        response_latency_s=latency,
                        receiving_vms=receiving,
                    )
                )

            result.slots.append(slot_record)
            previous_assignment = dict(placement.assignment)
            self._evict_cache(slot)

        return result


def run_policies(
    config: ExperimentConfig, policies: list[PlacementPolicy]
) -> list[RunResult]:
    """Run several policies over the *same* workload realization.

    Every engine derives its stochastic streams from ``config.seed``,
    so policies see identical VMs, traces, volumes, weather and BER --
    the paper's comparison protocol.
    """
    return [SimulationEngine(config, policy).run() for policy in policies]
