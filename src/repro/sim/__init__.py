"""Simulation: configs, the slot engine, metrics and results.

* :mod:`repro.sim.config` -- experiment configurations (Table I fleet
  and CI-scale variants) and fleet builders,
* :mod:`repro.sim.state` -- the observation/placement interface between
  the engine and placement policies,
* :mod:`repro.sim.engine` -- the hour-slotted simulation loop,
* :mod:`repro.sim.metrics` / :mod:`repro.sim.results` -- per-slot
  records and aggregate results (cost, energy, response time).
"""

from repro.sim.config import (
    ExperimentConfig,
    build_datacenters,
    build_latency_model,
    paper_config,
    scaled_config,
)
from repro.sim.audit import AuditReport, audit_run
from repro.sim.engine import SimulationEngine, run_policies
from repro.sim.metrics import (
    cost_improvements,
    energy_improvements,
    format_comparison,
    normalized_costs,
    performance_improvements,
    response_time_pdf,
)
from repro.sim.results import RunResult, SlotRecord
from repro.sim.state import FleetPlacement, PlacementPolicy, SlotObservation

__all__ = [
    "AuditReport",
    "ExperimentConfig",
    "FleetPlacement",
    "PlacementPolicy",
    "RunResult",
    "SimulationEngine",
    "SlotObservation",
    "SlotRecord",
    "audit_run",
    "build_datacenters",
    "build_latency_model",
    "cost_improvements",
    "energy_improvements",
    "format_comparison",
    "normalized_costs",
    "paper_config",
    "performance_improvements",
    "response_time_pdf",
    "run_policies",
    "scaled_config",
]
