"""Driver-agnostic per-slot simulation kernel.

The :class:`SlotKernel` owns everything a simulation *driver* needs to
advance one hour-slot of the paper's protocol, independent of how the
driver schedules those slots:

* workload access -- realized demand matrices and data-volume matrices,
  with the per-slot row cache and the optional shared
  :class:`~repro.workload.materialize.WorkloadMaterialization`;
* the per-slot physics -- per-DC IT power (reference loops and the
  fleet-batched CSR kernel), PUE, the green controller pass, and the
  Eq. 1 response-latency evaluation;
* the accounting -- assembling the :class:`~repro.sim.results.SlotRecord`
  ledger entry for a slot.

Two drivers consume it: the slot-stepped reference loop in
:class:`~repro.sim.engine.SimulationEngine` (the default) and the
discrete-event :class:`~repro.sim.events.EventCore`.  Both call the
same :meth:`observe` / :meth:`step` pair per slot, so their
slot-boundary ledgers are byte-identical by construction -- the kernel
is the single place slot physics happens.

Method naming note: the physics/cache internals keep their historical
underscore names (``_demand``, ``_fleet_it_power``, ...) because the
engine facade forwards them one-to-one for the equivalence tests and
benchmarks that pin the bit-identity contract.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.green import GreenController
from repro.datacenter.pue import fleet_pue
from repro.sim.config import ExperimentConfig
from repro.sim.results import DCSlotRecord, SlotRecord
from repro.sim.state import FleetPlacement, SlotObservation
from repro.units import SECONDS_PER_HOUR
from repro.workload.arrivals import VMPopulation
from repro.workload.vm import VirtualMachine


class SlotKernel:
    """Per-slot physics and accounting, shared by every driver.

    Parameters
    ----------
    config:
        The (already workload-configured) experiment configuration.
    population:
        The realized VM population over the horizon.
    traces:
        Demand-trace source (``slot_demand`` / ``slot_demand_many``).
    volumes:
        Data-volume process (``volumes(vms, slot)``).
    latency_model:
        The Eq. 1 latency model of the fleet.
    green:
        The green controller stepping batteries/tariffs inside a slot.
    vectorized:
        Select the numpy hot paths (bit-identical to the loops).
    materialization:
        Optional shared workload materialization (see the engine).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        population: VMPopulation,
        traces,
        volumes,
        latency_model,
        green: GreenController,
        vectorized: bool = True,
        materialization=None,
    ) -> None:
        self.config = config
        self.population = population
        self.traces = traces
        self.volumes = volumes
        self.latency_model = latency_model
        self.green = green
        self.vectorized = vectorized
        self._materialization = materialization
        self._demand_cache: dict[tuple[int, int], np.ndarray] = {}
        #: Per-slot buckets of cache keys so eviction touches only the
        #: keys it removes (O(evicted)), not every live key each slot.
        self._demand_cache_slots: dict[int, list[tuple[int, int]]] = {}
        #: Per-ServerModel (capacity, idle, peak) level arrays, keyed
        #: by object id; the value keeps the model alive so ids stay
        #: unique.  Server models are fixed per spec, so the fleet
        #: kernel gathers per-server coefficients without rebuilding
        #: these arrays every slot.
        self._level_cache: dict[int, tuple] = {}

    def _level_arrays(self, model) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached per-level (capacity, idle W, peak W) arrays of a model."""
        cached = self._level_cache.get(id(model))
        if cached is None or cached[0] is not model:
            cached = (
                model,
                np.array(
                    [model.capacity(index) for index in range(len(model.levels))]
                ),
                np.array([spec.idle_watts for spec in model.levels]),
                np.array([spec.peak_watts for spec in model.levels]),
            )
            self._level_cache[id(model)] = cached
        return cached[1], cached[2], cached[3]

    # -- workload access ------------------------------------------------

    def _demand_row(self, vm: VirtualMachine, slot: int) -> np.ndarray:
        key = (vm.vm_id, slot)
        row = self._demand_cache.get(key)
        if row is None:
            row = self.traces.slot_demand(vm, slot)
            self._demand_cache[key] = row
            self._demand_cache_slots.setdefault(slot, []).append(key)
        return row

    def _demand(self, vms: list[VirtualMachine], slot: int) -> np.ndarray:
        if not vms:
            return np.zeros((0, self.config.steps_per_slot))
        if self._materialization is not None:
            matrix = self._materialization.demand(vms, slot)
            if matrix is not None:
                return matrix
        many = getattr(self.traces, "slot_demand_many", None)
        if not self.vectorized or many is None:
            return np.stack([self._demand_row(vm, slot) for vm in vms])
        cached = [self._demand_cache.get((vm.vm_id, slot)) for vm in vms]
        missing = [index for index, row in enumerate(cached) if row is None]
        if not missing:
            return np.stack(cached)
        if len(missing) == len(vms):
            matrix = many(vms, slot)
        else:
            matrix = np.empty((len(vms), self.config.steps_per_slot))
            for index, row in enumerate(cached):
                if row is not None:
                    matrix[index] = row
            fresh = many([vms[index] for index in missing], slot)
            for position, index in enumerate(missing):
                matrix[index] = fresh[position]
        # Freeze so cached row views cannot be corrupted downstream --
        # nothing in the engine or the policies writes to demand
        # matrices, and the materialization path serves frozen arrays
        # already.
        matrix.flags.writeable = False
        for index in missing:
            key = (vms[index].vm_id, slot)
            self._demand_cache[key] = matrix[index]
            self._demand_cache_slots.setdefault(slot, []).append(key)
        return matrix

    def _slot_volumes(self, vms: list[VirtualMachine], slot: int):
        """The slot's volume matrix, via the shared materialization
        cache when one is installed (with per-run fallback)."""
        if self._materialization is not None:
            matrix = self._materialization.volume_matrix(vms, slot)
            if matrix is not None:
                return matrix
        return self.volumes.volumes(vms, slot)

    def _evict_cache(self, older_than_slot: int) -> None:
        for slot in [s for s in self._demand_cache_slots if s < older_than_slot]:
            for key in self._demand_cache_slots.pop(slot):
                del self._demand_cache[key]

    # -- per-slot physics -------------------------------------------------

    def _dc_it_power(
        self,
        placement: FleetPlacement,
        dc_index: int,
        vm_rows: dict[int, int],
        demand_now: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """IT power trace (W) and active server count of one DC."""
        if self.vectorized:
            return self._dc_it_power_vectorized(
                placement, dc_index, vm_rows, demand_now
            )
        return self._dc_it_power_loop(placement, dc_index, vm_rows, demand_now)

    def _dc_it_power_loop(
        self,
        placement: FleetPlacement,
        dc_index: int,
        vm_rows: dict[int, int],
        demand_now: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """Reference implementation: per-server/per-VM Python loops."""
        allocation = placement.allocations[dc_index]
        power = np.zeros(self.config.steps_per_slot)
        model = allocation.model
        for server_vms, level in zip(allocation.server_vms, allocation.frequencies):
            aggregate = np.zeros(self.config.steps_per_slot)
            for vm_id in server_vms:
                aggregate += demand_now[vm_rows[vm_id]]
            power += model.power_trace(level, aggregate)
        return power, allocation.active_servers

    def _dc_it_power_vectorized(
        self,
        placement: FleetPlacement,
        dc_index: int,
        vm_rows: dict[int, int],
        demand_now: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """Grouped segment-sum implementation of :meth:`_dc_it_power`.

        The per-server demand aggregation is one CSR
        server-by-VM-row indicator matrix multiplied against the demand
        block -- a single C-speed pass that segment-sums each server's
        VM rows.  The CSR product accumulates each output row's terms
        sequentially in stored-column order, which is the loop
        reference's VM order, so every per-server aggregate -- and
        therefore the power trace -- is bit-identical to the loops.
        The final reduction uses ``sum(axis=0)``, which likewise
        accumulates rows sequentially exactly like the reference's
        ``power +=``.

        The slot driver no longer calls this per DC: the fleet-batched
        :meth:`_fleet_it_power` evaluates the whole placement in one
        CSR product.  This per-DC form is retained as the
        middle-reference the equivalence tests and benchmarks compare
        against.
        """
        allocation = placement.allocations[dc_index]
        n_servers = len(allocation.server_vms)
        if n_servers == 0:
            return np.zeros(self.config.steps_per_slot), allocation.active_servers
        model = allocation.model
        row_of_vm = np.array(
            [vm_rows[vm_id] for vms in allocation.server_vms for vm_id in vms],
            dtype=int,
        )
        indptr = np.concatenate(
            ([0], np.cumsum([len(vms) for vms in allocation.server_vms]))
        )
        membership = sparse.csr_matrix(
            (np.ones(row_of_vm.size), row_of_vm, indptr),
            shape=(n_servers, demand_now.shape[0]),
        )
        aggregate = membership @ demand_now

        levels = np.asarray(allocation.frequencies, dtype=int)
        level_caps = np.array(
            [model.capacity(index) for index in range(len(model.levels))]
        )
        level_idle = np.array([spec.idle_watts for spec in model.levels])
        level_peak = np.array([spec.peak_watts for spec in model.levels])
        utilization = np.clip(aggregate / level_caps[levels, None], 0.0, 1.0)
        per_server = (
            level_idle[levels, None]
            + (level_peak[levels, None] - level_idle[levels, None]) * utilization
        )
        return per_server.sum(axis=0), allocation.active_servers

    def _fleet_it_power(
        self,
        placement: FleetPlacement,
        vm_rows: dict[int, int],
        demand_now: np.ndarray,
    ) -> tuple[np.ndarray, list[int]]:
        """IT power traces (W) of *every* DC from one CSR product.

        Builds a single server-by-VM-row membership matrix over the
        whole placement -- block rows per DC, in DC index order --
        instead of rebuilding one matrix per DC per slot, and computes
        all per-server aggregates and power draws in one pass.
        Returns the ``(n_dcs, steps)`` power matrix and the per-DC
        active-server counts.

        Bit-identity with :meth:`_dc_it_power_vectorized` (and hence
        with the loop reference): a CSR row's product terms accumulate
        in stored-column order regardless of which other rows share
        the matrix, the per-server power expression is elementwise,
        and each DC's final reduction is ``sum(axis=0)`` over its
        *contiguous block* of per-server rows -- the same rows, in the
        same order, reduced the same way as the per-DC call.
        """
        steps = self.config.steps_per_slot
        allocations = placement.allocations
        actives = [allocation.active_servers for allocation in allocations]
        counts = [len(allocation.server_vms) for allocation in allocations]
        power = np.zeros((self.config.n_dcs, steps))
        if sum(counts) == 0:
            return power, actives

        row_of_vm = np.array(
            [
                vm_rows[vm_id]
                for allocation in allocations
                for vms in allocation.server_vms
                for vm_id in vms
            ],
            dtype=int,
        )
        indptr = np.concatenate(
            (
                [0],
                np.cumsum(
                    [
                        len(vms)
                        for allocation in allocations
                        for vms in allocation.server_vms
                    ]
                ),
            )
        )
        membership = sparse.csr_matrix(
            (np.ones(row_of_vm.size), row_of_vm, indptr),
            shape=(sum(counts), demand_now.shape[0]),
        )
        aggregate = membership @ demand_now

        cap_rows, idle_rows, peak_rows = [], [], []
        for allocation in allocations:
            if not allocation.server_vms:
                continue
            levels = np.asarray(allocation.frequencies, dtype=int)
            level_caps, level_idle, level_peak = self._level_arrays(
                allocation.model
            )
            cap_rows.append(level_caps[levels])
            idle_rows.append(level_idle[levels])
            peak_rows.append(level_peak[levels])
        caps = np.concatenate(cap_rows)
        idle = np.concatenate(idle_rows)
        peaks = np.concatenate(peak_rows)
        # clip(x, 0, 1) reduced to the saturation bound with buffer
        # reuse.  The lower clip is dropped: aggregates are sums of
        # non-negative demand over positive capacities, so utilization
        # can only differ from clip's by the sign of a zero -- and
        # ``idle + span * u`` maps both zeros to the same bits.
        utilization = np.divide(aggregate, caps[:, None], out=aggregate)
        np.minimum(utilization, 1.0, out=utilization)
        per_server = np.multiply(
            utilization, (peaks - idle)[:, None], out=utilization
        )
        per_server += idle[:, None]

        bounds = np.concatenate(([0], np.cumsum(counts)))
        for dc_index in range(self.config.n_dcs):
            block = per_server[bounds[dc_index] : bounds[dc_index + 1]]
            if block.shape[0]:
                power[dc_index] = block.sum(axis=0)
        return power, actives

    def _response_latencies(
        self,
        placement: FleetPlacement,
        vms: list[VirtualMachine],
        volumes_now: np.ndarray,
        slot: int,
    ) -> list[tuple[float, int]]:
        """Eq. 1 latency and receiving-VM count per destination DC."""
        if self.vectorized:
            return self._response_latencies_vectorized(
                placement, vms, volumes_now, slot
            )
        return self._response_latencies_loop(placement, vms, volumes_now, slot)

    def _response_latencies_loop(
        self,
        placement: FleetPlacement,
        vms: list[VirtualMachine],
        volumes_now: np.ndarray,
        slot: int,
    ) -> list[tuple[float, int]]:
        """Reference implementation: per-src/dst dict loops."""
        n_dcs = self.config.n_dcs
        dc_of = np.array([placement.assignment[vm.vm_id] for vm in vms], dtype=int)
        results: list[tuple[float, int]] = []
        received = volumes_now.sum(axis=0)  # MB flowing into each VM
        for dst in range(n_dcs):
            members = np.nonzero(dc_of == dst)[0]
            if members.size == 0:
                results.append((0.0, 0))
                continue
            volumes_from = {}
            for src in range(n_dcs):
                senders = np.nonzero(dc_of == src)[0]
                if senders.size == 0:
                    continue
                volume = float(volumes_now[np.ix_(senders, members)].sum())
                if volume > 0.0:
                    volumes_from[src] = volume
            latency = self.latency_model.destination_latency(
                dst, volumes_from, slot
            ).total_s
            receiving = int(np.count_nonzero(received[members] > 0.0))
            results.append((latency, receiving))
        return results

    def _response_latencies_vectorized(
        self,
        placement: FleetPlacement,
        vms: list[VirtualMachine],
        volumes_now: np.ndarray,
        slot: int,
    ) -> list[tuple[float, int]]:
        """Grouped-matrix implementation of :meth:`_response_latencies`.

        One stable argsort yields each DC's member indices (ascending,
        matching the reference's ``np.nonzero``), replacing the
        reference's 2 x n_dcs ``np.nonzero`` scans; each pair volume is
        then the reference's own ``volumes[np.ix_(src, dst)].sum()`` --
        bit-identical by construction, with one fused gather+sum per
        pair instead of the previous whole-matrix blocked gather plus
        a redundant per-block ``ascontiguousarray`` copy (3x the
        memory traffic).

        Deliberately *not* ``np.add.reduceat``: reduceat accumulates
        strictly left-to-right while ndarray ``.sum()`` reduces
        pairwise, so their float64 results differ in the last ulps for
        any realistic block -- it cannot satisfy the bit-identity
        contract (see test_reduceat_is_not_bit_identical).
        """
        n_dcs = self.config.n_dcs
        dc_of = np.array([placement.assignment[vm.vm_id] for vm in vms], dtype=int)
        n_vms = dc_of.size
        received = volumes_now.sum(axis=0)  # MB flowing into each VM
        if n_vms == 0:
            member_counts = np.zeros(n_dcs, dtype=int)
            receiving_counts = np.zeros(n_dcs, dtype=int)
            pair_volumes = np.zeros((n_dcs, n_dcs))
        else:
            member_counts = np.bincount(dc_of, minlength=n_dcs)
            receiving_counts = np.bincount(
                dc_of[received > 0.0], minlength=n_dcs
            )
            order = np.argsort(dc_of, kind="stable")
            bounds = np.concatenate(([0], np.cumsum(member_counts)))
            groups = [
                order[bounds[dc] : bounds[dc + 1]] for dc in range(n_dcs)
            ]
            pair_volumes = np.zeros((n_dcs, n_dcs))
            for src in range(n_dcs):
                if member_counts[src] == 0:
                    continue
                for dst in range(n_dcs):
                    if member_counts[dst] == 0:
                        continue
                    pair_volumes[src, dst] = volumes_now[
                        np.ix_(groups[src], groups[dst])
                    ].sum()

        results: list[tuple[float, int]] = []
        for dst in range(n_dcs):
            if member_counts[dst] == 0:
                results.append((0.0, 0))
                continue
            volumes_from = {
                src: float(pair_volumes[src, dst])
                for src in range(n_dcs)
                if pair_volumes[src, dst] > 0.0
            }
            latency = self.latency_model.destination_latency(
                dst, volumes_from, slot
            ).total_s
            results.append((latency, int(receiving_counts[dst])))
        return results

    # -- driver interface -------------------------------------------------

    def observe(
        self,
        slot: int,
        vms: list[VirtualMachine],
        previous_assignment: dict[int, int],
        dcs: list,
        clairvoyant: bool = False,
    ) -> SlotObservation:
        """Assemble the policy-facing observation for ``slot``.

        Carries the *previous* slot's realized traces and volumes
        (Section IV-A's last-interval protocol) unless ``clairvoyant``,
        and the previous assignment restricted to still-alive VMs.
        """
        observed_slot = slot if clairvoyant else max(slot - 1, 0)
        return SlotObservation(
            slot=slot,
            vms=vms,
            demand_traces=self._demand(vms, observed_slot),
            volumes=self._slot_volumes(vms, observed_slot),
            previous_assignment={
                vm.vm_id: previous_assignment[vm.vm_id]
                for vm in vms
                if vm.vm_id in previous_assignment
            },
            dcs=dcs,
            latency_model=self.latency_model,
            latency_constraint_s=self.config.latency_constraint_s,
        )

    def step(
        self,
        slot: int,
        vms: list[VirtualMachine],
        placement: FleetPlacement,
        dcs: list,
    ) -> SlotRecord:
        """Advance one slot of physics and return its ledger entry.

        Replays ``placement`` against the realized current-slot traces:
        IT power at the chosen DVFS levels, times the time-varying PUE,
        through the green controller (renewables, battery, grid, cost),
        plus the Eq. 1 response latencies.  Mutates the battery state
        held in ``dcs`` and the per-DC history -- drivers call this
        exactly once per slot, in slot order.
        """
        config = self.config
        vm_rows = {vm.vm_id: row for row, vm in enumerate(vms)}
        demand_now = self._demand(vms, slot)
        volumes_now = self._slot_volumes(vms, slot)
        latencies = self._response_latencies(
            placement, vms, volumes_now.volumes, slot
        )

        slot_record = SlotRecord(
            slot=slot,
            n_vms=len(vms),
            migrations=len(placement.moves),
            migration_volume_mb=sum(move.image_mb for move in placement.moves),
        )

        times = slot * SECONDS_PER_HOUR + (
            (np.arange(config.steps_per_slot) + 0.5)
            * (SECONDS_PER_HOUR / config.steps_per_slot)
        )
        step_s = SECONDS_PER_HOUR / config.steps_per_slot
        if self.vectorized:
            # Fleet-batched slot physics: one CSR product for all
            # DCs' IT power, one PUE broadcast, one green-controller
            # kernel stepping every battery as struct-of-arrays.
            it_matrix, actives = self._fleet_it_power(
                placement, vm_rows, demand_now
            )
            facility_matrix = it_matrix * fleet_pue(
                [dc.spec.pue_model for dc in dcs], times
            )
            greens = self.green.run_slot_fleet(dcs, slot, facility_matrix)
            it_traces = list(it_matrix)
        else:
            greens, actives, it_traces = [], [], []
            for dc in dcs:
                it_power, active = self._dc_it_power(
                    placement, dc.index, vm_rows, demand_now
                )
                facility_power = it_power * dc.spec.pue_model.pue(times)
                greens.append(self.green.run_slot(dc, slot, facility_power))
                actives.append(active)
                it_traces.append(it_power)
        for dc in dcs:
            green = greens[dc.index]
            dc.record_slot(slot, green.facility_energy, green.pv_generated)
            latency, receiving = latencies[dc.index]
            slot_record.dc_records.append(
                DCSlotRecord(
                    green=green,
                    it_energy_joules=float(
                        it_traces[dc.index].sum() * step_s
                    ),
                    active_servers=actives[dc.index],
                    response_latency_s=latency,
                    receiving_vms=receiving,
                )
            )
        return slot_record
