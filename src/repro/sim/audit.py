"""Post-run physical-consistency auditor.

A :class:`~repro.sim.results.RunResult` is a ledger; this module checks
the ledger obeys physics and the model's contracts:

* every slot's green ledger conserves energy (PV split, source sum);
* IT energy never exceeds facility energy (PUE >= 1);
* battery state-of-charge stays within [floor, capacity] and is
  continuous across slots;
* response-time samples and migration counters are non-negative and
  internally consistent.

The auditor is used by integration tests and available to library
users as a cheap sanity gate after custom experiments
(``audit_run(result, config).raise_if_failed()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import ExperimentConfig
from repro.sim.results import RunResult


@dataclass
class AuditReport:
    """Outcome of an audit: a list of human-readable violations."""

    policy_name: str
    checks_run: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def record(self, ok: bool, message: str) -> None:
        """Count a check; store ``message`` when it failed."""
        self.checks_run += 1
        if not ok:
            self.violations.append(message)

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` listing all violations."""
        if not self.passed:
            summary = "\n  - ".join(self.violations[:20])
            raise AssertionError(
                f"audit of {self.policy_name!r} failed "
                f"({len(self.violations)} violations):\n  - {summary}"
            )


def audit_run(
    result: RunResult,
    config: ExperimentConfig,
    tolerance: float = 1e-6,
) -> AuditReport:
    """Run every consistency check against a finished simulation."""
    report = AuditReport(policy_name=result.policy_name)
    report.record(
        result.horizon == config.horizon_slots,
        f"horizon {result.horizon} != configured {config.horizon_slots}",
    )

    previous_soc = [None] * config.n_dcs
    for slot in result.slots:
        report.record(
            len(slot.dc_records) == config.n_dcs,
            f"slot {slot.slot}: {len(slot.dc_records)} DC records",
        )
        report.record(
            slot.migrations >= 0 and slot.migration_volume_mb >= 0.0,
            f"slot {slot.slot}: negative migration counters",
        )
        for dc_index, record in enumerate(slot.dc_records):
            green = record.green
            prefix = f"slot {slot.slot} DC{dc_index + 1}"

            supplied = green.pv_used + green.battery_discharged + green.grid_to_load
            scale = max(green.facility_energy, 1.0)
            report.record(
                abs(supplied - green.facility_energy) <= tolerance * scale,
                f"{prefix}: sources {supplied:.3f} != facility "
                f"{green.facility_energy:.3f}",
            )

            pv_split = green.pv_used + green.pv_stored + green.pv_curtailed
            report.record(
                abs(pv_split - green.pv_generated)
                <= tolerance * max(green.pv_generated, 1.0),
                f"{prefix}: PV split does not add up",
            )

            report.record(
                green.grid_energy >= green.grid_to_load - tolerance,
                f"{prefix}: grid energy below grid-to-load",
            )
            report.record(
                green.grid_cost_eur >= -tolerance,
                f"{prefix}: negative grid cost",
            )
            report.record(
                record.it_energy_joules <= green.facility_energy + tolerance * scale,
                f"{prefix}: IT energy above facility energy (PUE < 1?)",
            )
            report.record(
                record.active_servers <= config.specs[dc_index].n_servers,
                f"{prefix}: more active servers than physical",
            )
            report.record(
                record.response_latency_s >= 0.0 and record.receiving_vms >= 0,
                f"{prefix}: negative response metrics",
            )

            spec = config.specs[dc_index]
            capacity = spec.battery_kwh * 3.6e6
            report.record(
                -tolerance * max(capacity, 1.0)
                <= green.soc_end - 0.0
                and green.soc_end <= capacity * (1.0 + tolerance) + tolerance,
                f"{prefix}: SoC {green.soc_end:.0f} outside [0, {capacity:.0f}]",
            )
            if previous_soc[dc_index] is not None:
                report.record(
                    abs(green.soc_start - previous_soc[dc_index])
                    <= tolerance * max(capacity, 1.0),
                    f"{prefix}: SoC discontinuity across slots",
                )
            previous_soc[dc_index] = green.soc_end

    samples = result.response_samples()
    report.record(
        bool((samples >= 0.0).all()) if samples.size else True,
        "negative response-time samples",
    )
    return report
