"""Engine <-> policy interface.

At each slot the engine assembles a :class:`SlotObservation` -- exactly
the information the paper's global controller "receives" at time slot T
(Section IV-A): the VMs' loads from the previous interval, their data
communications, the renewable forecast, available battery energy and
grid price of each DC.  A policy maps it to a :class:`FleetPlacement`.

Policies may keep internal state across slots (the proposed method
carries its 2D embedding); :meth:`PlacementPolicy.reset` clears it
between runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.datacenter.datacenter import Datacenter
from repro.network.latency import LatencyModel
from repro.workload.datacorr import VolumeMatrix
from repro.workload.vm import VirtualMachine

if TYPE_CHECKING:  # imported lazily to avoid a core <-> sim import cycle
    from repro.core.local import ServerAllocation
    from repro.core.migration import MigrationMove


@dataclass
class SlotObservation:
    """Everything a placement policy may look at for one slot.

    Attributes
    ----------
    slot:
        Slot index (hours since simulation start).
    vms:
        VMs alive this slot, in stable (vm_id) order.
    demand_traces:
        Previous-slot demand traces in core units, shape
        ``(len(vms), steps)``; rows aligned with ``vms``.  For VMs that
        arrived this slot this is their advertised/profiled demand.
    volumes:
        Previous-slot pairwise data volumes (MB), aligned with ``vms``.
    previous_assignment:
        vm_id -> DC index from the previous slot; newly arrived VMs are
        absent.
    dcs:
        The fleet with live battery/forecast state (read-only for
        policies; the engine owns mutation).
    latency_model:
        Eq. 1-4 evaluator over the fleet's topology.
    latency_constraint_s:
        Hard migration window (e.g. 72 s for 98 % QoS on 1 h slots).
    """

    slot: int
    vms: list[VirtualMachine]
    demand_traces: np.ndarray
    volumes: VolumeMatrix
    previous_assignment: dict[int, int]
    dcs: list[Datacenter]
    latency_model: LatencyModel
    latency_constraint_s: float

    @property
    def n_dcs(self) -> int:
        """Number of data centers."""
        return len(self.dcs)

    def vm_index(self) -> dict[int, int]:
        """vm_id -> positional index into ``vms`` (and trace rows)."""
        return {vm.vm_id: i for i, vm in enumerate(self.vms)}

    def previous_array(self) -> np.ndarray:
        """Previous DC per VM as an array; -1 marks new arrivals."""
        return np.array(
            [self.previous_assignment.get(vm.vm_id, -1) for vm in self.vms],
            dtype=int,
        )

    def loads(self) -> np.ndarray:
        """Mean previous-slot demand per VM (core units)."""
        if len(self.vms) == 0:
            return np.zeros(0)
        return self.demand_traces.mean(axis=1)


@dataclass
class FleetPlacement:
    """A policy's decision for one slot.

    Attributes
    ----------
    assignment:
        vm_id -> DC index for every alive VM.
    allocations:
        Per-DC server allocation (index order matches the fleet).
    moves:
        Executed inter-DC migrations.
    diagnostics:
        Free-form policy introspection (embedding positions, caps,
        rejected migrations...) consumed by experiments and tests.
    """

    assignment: dict[int, int]
    allocations: list["ServerAllocation"]
    moves: list["MigrationMove"] = field(default_factory=list)
    diagnostics: dict = field(default_factory=dict)

    def validate(self, observation: SlotObservation) -> None:
        """Raise if the placement is inconsistent with the observation."""
        alive_ids = {vm.vm_id for vm in observation.vms}
        if set(self.assignment) != alive_ids:
            missing = alive_ids - set(self.assignment)
            extra = set(self.assignment) - alive_ids
            raise ValueError(
                f"assignment mismatch: missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}"
            )
        if len(self.allocations) != observation.n_dcs:
            raise ValueError("one allocation per DC required")
        for dc_index, allocation in enumerate(self.allocations):
            allocation.validate()
            for vms in allocation.server_vms:
                for vm_id in vms:
                    if self.assignment[vm_id] != dc_index:
                        raise ValueError(
                            f"vm {vm_id} allocated on DC {dc_index} but "
                            f"assigned to DC {self.assignment[vm_id]}"
                        )
        placed = sum(a.vm_count() for a in self.allocations)
        if placed != len(alive_ids):
            raise ValueError(
                f"{placed} VMs on servers but {len(alive_ids)} alive"
            )


class PlacementPolicy(abc.ABC):
    """A global+local placement algorithm under comparison."""

    #: Short name used in result tables ("Proposed", "Ener-aware", ...).
    name: str = "unnamed"

    #: Policies that depend on the slot-stepped driver's cadence (e.g.
    #: by observing wall-clock side channels between slots) opt out of
    #: the event-driven core by setting this True; the engine rejects
    #: ``--engine event`` for them.  Every shipped policy is pure
    #: observation -> placement, so the default is False.
    requires_slot_engine: bool = False

    @abc.abstractmethod
    def place(self, observation: SlotObservation) -> FleetPlacement:
        """Decide the fleet placement for one slot."""

    def reset(self) -> None:
        """Clear cross-slot internal state (default: stateless)."""

    def descriptor(self) -> dict:
        """Identity of this policy for run fingerprinting.

        Returns the class name plus every public instance attribute
        (the constructor-tunable state); underscore attributes -- caches
        and cross-slot working state, which :meth:`reset` clears -- are
        excluded, so two freshly configured policies that would place
        identically share a descriptor.  The orchestrator canonicalizes
        the values (dataclasses, enums, functions) before hashing.
        """
        state = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }
        return {
            "class": type(self).__qualname__,
            "name": self.name,
            "state": state,
        }
