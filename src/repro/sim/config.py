"""Experiment configurations and fleet builders.

:func:`paper_config` reproduces Table I exactly: Lisbon (DC1, 1500
servers, 150 kWp PV, 960 kWh battery), Zurich (DC2, 1000/100/720) and
Helsinki (DC3, 500/50/480), 5 s control sampling, one-week horizon.

:func:`scaled_config` keeps the *shape* of the fleet (the 3:2:1 server
ratio, 0.1 kWp and 0.64 kWh per server, the same sites, tariffs and
time zones) at a size that runs on a laptop; this is what the test
suite and the benchmark harness use, as recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.datacenter.datacenter import Datacenter, DatacenterSpec
from repro.datacenter.price import TwoLevelTariff
from repro.datacenter.pue import FreeCoolingPUE
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology
from repro.units import SECONDS_PER_HOUR
from repro.workload.arrivals import ArrivalModel

#: Site constants: (name, latitude, longitude, tz offset, tariff, PUE).
#: Tariff levels are realistic two-level retail prices; only their
#: ratios and phase offsets drive the placement policies.
SITES = {
    "Lisbon": dict(
        latitude=38.7223,
        longitude=-9.1393,
        tz_offset_hours=0.0,
        tariff=TwoLevelTariff(
            peak_price=0.24, offpeak_price=0.12, tz_offset_hours=0.0
        ),
        pue=FreeCoolingPUE(mean_temp_c=16.0, daily_swing_c=6.0, tz_offset_hours=0.0),
    ),
    "Zurich": dict(
        latitude=47.3769,
        longitude=8.5417,
        tz_offset_hours=1.0,
        tariff=TwoLevelTariff(
            peak_price=0.20, offpeak_price=0.10, tz_offset_hours=1.0
        ),
        pue=FreeCoolingPUE(mean_temp_c=13.0, daily_swing_c=6.0, tz_offset_hours=1.0),
    ),
    "Helsinki": dict(
        latitude=60.1699,
        longitude=24.9384,
        tz_offset_hours=2.0,
        tariff=TwoLevelTariff(
            peak_price=0.16, offpeak_price=0.08, tz_offset_hours=2.0
        ),
        pue=FreeCoolingPUE(mean_temp_c=11.0, daily_swing_c=6.0, tz_offset_hours=2.0),
    ),
}

#: Table I per-server energy-source densities.  PV is proportional to
#: fleet size (150/100/50 kWp over 1500/1000/500 servers = 0.1 kWp per
#: server); the battery is NOT (960/720/480 kWh is a 4:3:2 ratio), so
#: each site keeps its own kWh-per-server density.
PV_KWP_PER_SERVER = 0.1
BATTERY_KWH_PER_SERVER = {
    "Lisbon": 960.0 / 1500.0,
    "Zurich": 720.0 / 1000.0,
    "Helsinki": 480.0 / 500.0,
}


def _make_spec(site: str, n_servers: int) -> DatacenterSpec:
    info = SITES[site]
    return DatacenterSpec(
        name=site,
        latitude=info["latitude"],
        longitude=info["longitude"],
        n_servers=n_servers,
        pv_kwp=PV_KWP_PER_SERVER * n_servers,
        battery_kwh=BATTERY_KWH_PER_SERVER[site] * n_servers,
        tariff=info["tariff"],
        pue_model=info["pue"],
        tz_offset_hours=info["tz_offset_hours"],
    )


@dataclass(frozen=True)
class EngineCoreConfig:
    """Which simulation driver advances the run, and its knobs.

    Part of :class:`~repro.experiments.orchestrator.EngineOptions`, so
    the engine mode joins the run fingerprint and the service wire
    round-trip: a ``kind="event"`` run is a *different artifact* from a
    ``kind="slot"`` run (it additionally carries the per-request
    latency ledger) even though their slot-boundary ledgers are
    byte-identical.

    Attributes
    ----------
    kind:
        ``"slot"`` -- the reference slot-stepped loop (default);
        ``"event"`` -- the discrete-event driver
        (:class:`~repro.sim.events.EventCore`), which additionally
        samples per-request latencies inside each slot.
    requests_per_vm_hour:
        Mean simulated user requests per receiving VM per hour-slot;
        the event driver's Poisson request stream intensity.  Only the
        request ledger depends on it -- slot physics never does.
    """

    kind: str = "slot"
    requests_per_vm_hour: float = 120.0

    def __post_init__(self) -> None:
        if self.kind not in ("slot", "event"):
            raise ValueError(
                f"engine kind must be 'slot' or 'event', got {self.kind!r}"
            )
        if self.requests_per_vm_hour <= 0.0:
            raise ValueError("requests_per_vm_hour must be positive")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one simulation run depends on.

    Attributes
    ----------
    name:
        Config label recorded into results.
    specs:
        The DC fleet (index order = DC1, DC2, DC3...).
    horizon_slots:
        Number of one-hour slots to simulate.
    steps_per_slot:
        Trace samples / green-controller steps per slot (paper: 720,
        i.e. 5 s granularity).
    arrival_model:
        The VM arrival/lifetime process.
    qos:
        Migration QoS level; the hard latency window is
        ``(1 - qos) * slot`` (98 % -> 72 s).
    seed:
        Root seed; workload, traces, volumes, weather and BER derive
        their own streams from it.
    """

    name: str
    specs: tuple[DatacenterSpec, ...]
    horizon_slots: int = 168
    steps_per_slot: int = 720
    arrival_model: ArrivalModel = field(default_factory=ArrivalModel)
    qos: float = 0.98
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("at least one DC spec required")
        if self.horizon_slots < 1:
            raise ValueError("horizon_slots must be >= 1")
        if self.steps_per_slot < 1:
            raise ValueError("steps_per_slot must be >= 1")
        if not 0.0 < self.qos < 1.0:
            raise ValueError("qos must be in (0, 1)")

    @property
    def latency_constraint_s(self) -> float:
        """The hard migration window per slot."""
        return (1.0 - self.qos) * SECONDS_PER_HOUR

    @property
    def n_dcs(self) -> int:
        """Number of data centers."""
        return len(self.specs)

    def with_horizon(self, horizon_slots: int) -> "ExperimentConfig":
        """Copy with a different horizon (for quick experiments)."""
        return replace(self, horizon_slots=horizon_slots)


def paper_config(seed: int = 0) -> ExperimentConfig:
    """The exact Table I setup: full fleet, 5 s sampling, one week.

    This configuration is faithful but heavy (thousands of VMs); the
    benchmark harness uses :func:`scaled_config` and records the scale
    in EXPERIMENTS.md.
    """
    return ExperimentConfig(
        name="paper",
        specs=(
            _make_spec("Lisbon", 1500),
            _make_spec("Zurich", 1000),
            _make_spec("Helsinki", 500),
        ),
        horizon_slots=168,
        steps_per_slot=720,
        arrival_model=ArrivalModel(
            initial_services=300,
            arrival_rate=10.0,
            mean_lifetime_slots=48.0,
        ),
        seed=seed,
    )


def scaled_config(scale: str = "small", seed: int = 0) -> ExperimentConfig:
    """Laptop-scale variants preserving the paper fleet's shape.

    * ``"small"`` -- 24/16/8 servers, ~150 simultaneous VMs, one-week
      horizon at 60 s sampling (the benchmark default);
    * ``"tiny"`` -- 6/4/2 servers, ~20 VMs, one-day horizon at 120 s
      sampling (the test-suite default).
    """
    if scale == "small":
        return ExperimentConfig(
            name="small",
            specs=(
                _make_spec("Lisbon", 24),
                _make_spec("Zurich", 16),
                _make_spec("Helsinki", 8),
            ),
            horizon_slots=168,
            steps_per_slot=60,
            arrival_model=ArrivalModel(
                initial_services=20,
                arrival_rate=1.1,
                mean_lifetime_slots=48.0,
            ),
            seed=seed,
        )
    if scale == "tiny":
        return ExperimentConfig(
            name="tiny",
            specs=(
                _make_spec("Lisbon", 6),
                _make_spec("Zurich", 4),
                _make_spec("Helsinki", 2),
            ),
            horizon_slots=24,
            steps_per_slot=30,
            arrival_model=ArrivalModel(
                initial_services=6,
                arrival_rate=0.5,
                mean_lifetime_slots=12.0,
            ),
            seed=seed,
        )
    raise ValueError(f"unknown scale {scale!r} (use 'small' or 'tiny')")


def build_datacenters(config: ExperimentConfig) -> list[Datacenter]:
    """Fresh live DCs (full batteries, empty forecast history)."""
    return [
        Datacenter(spec, index, seed=config.seed)
        for index, spec in enumerate(config.specs)
    ]


def build_latency_model(config: ExperimentConfig) -> LatencyModel:
    """Topology + BER process for the config's fleet."""
    topology = GeoTopology(list(config.specs))
    return LatencyModel(topology, BERProcess(seed=config.seed))
