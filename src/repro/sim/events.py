"""Discrete-event simulation driver.

The :class:`EventCore` advances the shared
:class:`~repro.sim.kernel.SlotKernel` from a typed event heap instead
of a ``for slot in range(...)`` loop -- the EventHeap idiom of the
massive-MIMO slicing simulator referenced in SNIPPETS.md: every state
change is a ``(time, kind, payload)`` tuple popped in time order
against incremental state.

Event taxonomy (the kind value doubles as the same-time priority, so
simultaneous events drain in lifecycle order):

==============  =====================================================
``DEPARTURE``   a VM leaves the population (boundary ``t = slot``)
``ARRIVAL``     a VM joins the population (after same-slot departures)
``MEASURE``     slot boundary: observe -> place -> kernel physics step
``MIGRATION``   one executed inter-DC move (trace event)
``TARIFF``      a site crossed its peak/off-peak price edge
``BATTERY``     a battery reversed direction (charge <-> discharge)
``REQUEST``     an aggregated batch of simulated user requests landing
                mid-slot at one DC (``t = slot + 0.5``)
==============  =====================================================

Slot-boundary equivalence contract: the MEASURE handler runs *exactly*
the slot driver's per-slot sequence -- the same kernel ``observe`` and
``step`` calls over the same alive-VM list (the incremental alive dict
replays arrivals/departures in vm_id order, which is
:meth:`~repro.workload.arrivals.VMPopulation.alive`'s ordering) -- so
``result.slots`` is byte-identical to the reference slot engine's.
The trace events (migration, tariff, battery, request) are *derived
from* the physics, never feed back into it; only the per-request
latency ledger (:attr:`~repro.sim.results.RunResult.requests`) and the
event counters depend on them.

Per-request latencies: each slot the driver draws one Poisson request
count per destination DC (``receiving_vms *
requests_per_vm_hour``), from a dedicated
``default_rng([seed, slot, salt])`` stream so request sampling can
never perturb the workload/physics streams, and ledgers the batch at
the DC's Eq. 1 latency.  Millions of simulated requests cost one
ledger row per (slot, DC) -- the p50/p99/p99.9 accessors on
:class:`~repro.sim.results.RunResult` expand the weights exactly.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.sim.config import build_datacenters
from repro.sim.results import RunResult
from repro.units import SECONDS_PER_HOUR
from repro.workload.arrivals import EVENT_ARRIVAL

#: Event kinds, in same-time drain order.
DEPARTURE = 0
ARRIVAL = 1
MEASURE = 2
MIGRATION = 3
TARIFF = 4
BATTERY = 5
REQUEST = 6

KIND_NAMES = {
    DEPARTURE: "departure",
    ARRIVAL: "arrival",
    MEASURE: "measure",
    MIGRATION: "migration",
    TARIFF: "tariff",
    BATTERY: "battery",
    REQUEST: "request",
}

#: Third word of the request-stream seed sequence -- keeps the request
#: Poisson draws on their own stream, disjoint from the workload
#: streams derived from ``config.seed`` alone.
_REQUEST_SALT = 0xE7


class EventHeap:
    """A time-ordered heap of ``(time, kind, payload)`` events.

    Ties break by kind (lifecycle order above), then by push order --
    the monotone sequence number makes the drain order total and
    deterministic without ever comparing payloads.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: int, payload: object = None) -> None:
        """Schedule an event at ``time`` (in slots)."""
        heapq.heappush(self._heap, (time, kind, next(self._seq), payload))

    def pop(self) -> tuple[float, int, object]:
        """Remove and return the earliest event."""
        time, kind, _, payload = heapq.heappop(self._heap)
        return time, kind, payload

    def peek_time(self) -> float:
        """Time of the earliest event (heap must be non-empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventCore:
    """Drains the event heap against the engine's slot kernel.

    Built by :meth:`SimulationEngine.run` when the engine config says
    ``kind="event"``; holds no physics of its own.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.heap = EventHeap()
        #: Drained events per kind name (observability; tests assert
        #: the lifecycle counts match the population).
        self.event_counts: dict[str, int] = {
            name: 0 for name in KIND_NAMES.values()
        }
        self._alive: dict[int, object] = {}
        self._previous_assignment: dict[int, int] = {}
        #: Per-DC peak-tariff flag and battery direction of the
        #: previous slot, for edge detection.
        self._was_peak: list[bool | None] = []
        self._battery_direction: list[int] = []

    # -- schedule ------------------------------------------------------

    def _schedule_initial(self) -> None:
        config = self.engine.config
        for slot, kind, vm in self.engine.kernel.population.events():
            self.heap.push(
                float(slot),
                ARRIVAL if kind == EVENT_ARRIVAL else DEPARTURE,
                vm,
            )
        for slot in range(config.horizon_slots):
            self.heap.push(float(slot), MEASURE, slot)

    # -- handlers ------------------------------------------------------

    def _handle_measure(self, slot: int, dcs, result: RunResult) -> None:
        engine = self.engine
        kernel = engine.kernel
        vms = list(self._alive.values())
        observation = kernel.observe(
            slot,
            vms,
            self._previous_assignment,
            dcs,
            clairvoyant=engine.clairvoyant,
        )
        placement = engine.policy.place(observation)
        if engine.validate:
            placement.validate(observation)

        record = kernel.step(slot, vms, placement, dcs)
        result.slots.append(record)
        self._previous_assignment = dict(placement.assignment)
        kernel._evict_cache(slot)

        for move in placement.moves:
            self.heap.push(float(slot), MIGRATION, move)
        self._schedule_tariff_edges(slot, dcs)
        self._schedule_battery_edges(slot, record)
        self._schedule_requests(slot, record)

    def _schedule_tariff_edges(self, slot: int, dcs) -> None:
        mid_slot_s = (slot + 0.5) * SECONDS_PER_HOUR
        for dc in dcs:
            peak = bool(dc.spec.tariff.is_peak(mid_slot_s))
            if self._was_peak[dc.index] is not None and (
                peak != self._was_peak[dc.index]
            ):
                self.heap.push(float(slot), TARIFF, (dc.index, peak))
            self._was_peak[dc.index] = peak

    def _schedule_battery_edges(self, slot: int, record) -> None:
        for dc_index, dc_record in enumerate(record.dc_records):
            delta = dc_record.green.soc_end - dc_record.green.soc_start
            direction = (delta > 0.0) - (delta < 0.0)
            if direction != 0 and direction != self._battery_direction[dc_index]:
                self.heap.push(float(slot), BATTERY, (dc_index, direction))
            if direction != 0:
                self._battery_direction[dc_index] = direction

    def _schedule_requests(self, slot: int, record) -> None:
        rate = self.engine.engine_config.requests_per_vm_hour
        rng = np.random.default_rng(
            [self.engine.config.seed, slot, _REQUEST_SALT]
        )
        for dc_index, dc_record in enumerate(record.dc_records):
            if dc_record.receiving_vms == 0:
                continue
            count = int(rng.poisson(dc_record.receiving_vms * rate))
            if count == 0:
                continue
            self.heap.push(
                slot + 0.5,
                REQUEST,
                (slot, dc_index, dc_record.response_latency_s, count),
            )

    # -- drive ---------------------------------------------------------

    def run(self) -> RunResult:
        """Drain the heap over the horizon and return the ledger."""
        engine = self.engine
        config = engine.config
        engine.policy.reset()
        dcs = build_datacenters(config)
        self._was_peak = [None] * config.n_dcs
        self._battery_direction = [0] * config.n_dcs
        result = RunResult(
            policy_name=engine.policy.name,
            config_name=config.name,
            requests=[],
        )
        self._schedule_initial()

        while self.heap:
            _, kind, payload = self.heap.pop()
            self.event_counts[KIND_NAMES[kind]] += 1
            if kind == DEPARTURE:
                del self._alive[payload.vm_id]
            elif kind == ARRIVAL:
                self._alive[payload.vm_id] = payload
            elif kind == MEASURE:
                self._handle_measure(payload, dcs, result)
            elif kind == REQUEST:
                slot, dc_index, latency_s, count = payload
                result.requests.append([slot, dc_index, latency_s, count])
            # MIGRATION / TARIFF / BATTERY are pure trace events: the
            # counter above is their whole effect.

        return result
